//! Journal-streaming replication: leader → follower record streaming,
//! follower reads with a bounded-staleness contract, and leader failover.
//!
//! The leader is an ordinary journaled [`PbsServer`]; replication is a
//! pure observer of its write-ahead journal. A [`ReplicationHub`] streams
//! every appended [`Record`] (plus [`ServerImage`] snapshots for catch-up
//! and compaction handoff) to N follower threads over in-process
//! channels. Followers rebuild state through the *ordinary* mutation
//! paths ([`PbsServer::apply_record`]), so leader and follower execute
//! the identical deterministic code — divergence is detectable by
//! construction and checked at every snapshot boundary plus periodic
//! rolling-digest frames.
//!
//! Positions are `Journal::total_appended` coordinates: 1-based,
//! monotonic and stable across compaction, so a follower watermark ("I
//! have applied every record through `w`") survives snapshot handoffs
//! and names the same prefix before and after the leader compacts.
//!
//! The transport is hardened the way an on-the-wire journal must be:
//! each frame is length-delimited and CRC-32 protected; a torn trailing
//! frame (the partial-write crash artifact) is truncated and counted,
//! while a CRC mismatch (bit corruption) is a hard error.
//!
//! Delivery is at-least-once and unordered: the hub go-back-N resends
//! from the follower's acked watermark when progress stalls, and the
//! follower keeps a reorder buffer, applying only the contiguous prefix.
//! Faults ([`ReplFaultPlan`]) therefore delay convergence but can never
//! corrupt it.
//!
//! Failover promotes the highest-watermark follower: its server state is
//! byte-identical to the crashed leader at the replicated watermark (the
//! chaos suite pins this against a crash-free reference), the hub bumps
//! its `term`, and surviving followers re-seed from the new leader's
//! genesis snapshot — a frame from an older term is simply ignored.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use dynbatch_core::json::{self, Json};
use dynbatch_core::JobId;
use dynbatch_simtime::SplitMix64;

use crate::journal::{
    image_from_json, image_to_json, record_from_json, record_to_json, Journal, Record, ServerImage,
};
use crate::server::PbsServer;

// ---------------------------------------------------------------------------
// CRC-32 + length framing: the transport-hardened record envelope.

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Wraps one payload in the wire envelope: `len:u32le | crc32:u32le |
/// payload`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The result of unwrapping a byte run of frames.
#[derive(Debug, Default)]
pub struct Deframed {
    /// The complete, CRC-verified payloads, in order.
    pub payloads: Vec<Vec<u8>>,
    /// True when the run ended in a partial frame (torn trailing write):
    /// the tail was truncated — the payloads before it are all intact.
    pub torn: bool,
}

/// Splits a byte run into CRC-verified payloads. A short tail (fewer
/// bytes than the last header + payload promise) is a *torn trailing
/// frame*: tolerated, truncated, flagged. A CRC mismatch on a complete
/// frame is corruption and a hard error.
pub fn deframe(buf: &[u8]) -> Result<Deframed, String> {
    let mut out = Deframed::default();
    let mut at = 0usize;
    while at < buf.len() {
        if buf.len() - at < 8 {
            out.torn = true;
            return Ok(out);
        }
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().expect("4 bytes"));
        if buf.len() - at - 8 < len {
            out.torn = true;
            return Ok(out);
        }
        let payload = &buf[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            return Err(format!(
                "frame at byte {at}: CRC mismatch (stored {crc:#010x}, computed {:#010x})",
                crc32(payload)
            ));
        }
        out.payloads.push(payload.to_vec());
        at += 8 + len;
    }
    Ok(out)
}

/// Serialises a journal into the framed transport form: one CRC-framed
/// compact-JSON record per entry.
pub fn journal_to_bytes(journal: &Journal) -> Vec<u8> {
    let mut out = Vec::new();
    for record in journal.records() {
        out.extend_from_slice(&frame(
            record_to_json(record).to_string_compact().as_bytes(),
        ));
    }
    out
}

/// Parses a framed journal ([`journal_to_bytes`]), tolerating a torn
/// trailing frame: the intact prefix is returned together with a warning.
/// Corruption inside the run (CRC mismatch, unparseable verified payload)
/// stays a hard error.
pub fn journal_from_bytes(bytes: &[u8]) -> Result<(Journal, Option<String>), String> {
    let deframed = deframe(bytes)?;
    let mut journal = Journal::new();
    for (i, payload) in deframed.payloads.iter().enumerate() {
        let text = std::str::from_utf8(payload).map_err(|e| format!("record {i}: {e}"))?;
        let record = json::parse(text)
            .and_then(|v| record_from_json(&v))
            .map_err(|e| format!("record {i}: {e}"))?;
        journal.append(record);
    }
    let warn = deframed.torn.then(|| {
        format!(
            "truncated torn trailing frame after record {}",
            journal.len()
        )
    });
    Ok((journal, warn))
}

/// FNV-1a (64-bit) of `bytes` — the rolling digest replication compares
/// across the stream without shipping full images.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Stream frames.

/// One unit on the replication stream. Every frame names the leader
/// `term` that produced it and an absolute journal position.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A journal record: the `pos`-th record the term's leader appended.
    Record {
        /// Leader term.
        term: u64,
        /// Absolute (`total_appended`) position.
        pos: u64,
        /// The record itself.
        record: Record,
    },
    /// A snapshot-boundary marker: position `pos` holds a snapshot
    /// record whose image is exactly the state after records `1..pos-1`
    /// — state the caught-up receiver already holds. The follower
    /// advances its watermark over the boundary without the leader
    /// re-serialising (or re-shipping) the full image; divergence
    /// checking rides the periodic [`Frame::Digest`] frames and the
    /// snapshot transfers that seed or heal a replica.
    Mark {
        /// Leader term.
        term: u64,
        /// Absolute position of the snapshot record being crossed.
        pos: u64,
    },
    /// A full state image — catch-up transfer, compaction handoff, or
    /// (when the follower is already at `pos - 1`) a verified snapshot
    /// boundary.
    Snapshot {
        /// Leader term.
        term: u64,
        /// Absolute position of the snapshot record.
        pos: u64,
        /// State after the first `pos - 1` records.
        image: Box<ServerImage>,
    },
    /// A rolling digest check: FNV-64 of the leader's serialised image
    /// at watermark `pos`. The follower verifies when it reaches `pos`.
    Digest {
        /// Leader term.
        term: u64,
        /// Watermark the digest was taken at.
        pos: u64,
        /// [`digest64`] of the leader's [`PbsServer::state_digest`].
        digest: u64,
    },
}

impl Frame {
    /// The frame's absolute journal position.
    pub fn pos(&self) -> u64 {
        match self {
            Frame::Record { pos, .. }
            | Frame::Mark { pos, .. }
            | Frame::Snapshot { pos, .. }
            | Frame::Digest { pos, .. } => *pos,
        }
    }
}

/// The JSON form of a record frame, built from borrowed parts — the
/// pump's shared encode cache serialises journal records without cloning
/// them into owned [`Frame`]s first.
fn record_frame_json(term: u64, pos: u64, record: &Record) -> Json {
    Json::obj(vec![
        ("f", Json::Str("rec".into())),
        ("term", Json::UInt(term)),
        ("pos", Json::UInt(pos)),
        ("rec", record_to_json(record)),
    ])
}

/// Serialises a frame to compact JSON (the framed payload).
pub fn frame_to_json(f: &Frame) -> Json {
    match f {
        Frame::Record { term, pos, record } => record_frame_json(*term, *pos, record),
        Frame::Mark { term, pos } => Json::obj(vec![
            ("f", Json::Str("mark".into())),
            ("term", Json::UInt(*term)),
            ("pos", Json::UInt(*pos)),
        ]),
        Frame::Snapshot { term, pos, image } => Json::obj(vec![
            ("f", Json::Str("snap".into())),
            ("term", Json::UInt(*term)),
            ("pos", Json::UInt(*pos)),
            ("img", image_to_json(image)),
        ]),
        Frame::Digest { term, pos, digest } => Json::obj(vec![
            ("f", Json::Str("dig".into())),
            ("term", Json::UInt(*term)),
            ("pos", Json::UInt(*pos)),
            ("d", Json::UInt(*digest)),
        ]),
    }
}

/// Parses a frame serialised by [`frame_to_json`].
pub fn frame_from_json(v: &Json) -> Result<Frame, String> {
    let kind = v.req("f")?.as_str().ok_or("frame kind must be a string")?;
    let term = v.req("term")?.as_u64().ok_or("term must be u64")?;
    let pos = v.req("pos")?.as_u64().ok_or("pos must be u64")?;
    match kind {
        "rec" => Ok(Frame::Record {
            term,
            pos,
            record: record_from_json(v.req("rec")?)?,
        }),
        "mark" => Ok(Frame::Mark { term, pos }),
        "snap" => Ok(Frame::Snapshot {
            term,
            pos,
            image: Box::new(image_from_json(v.req("img")?)?),
        }),
        "dig" => Ok(Frame::Digest {
            term,
            pos,
            digest: v.req("d")?.as_u64().ok_or("digest must be u64")?,
        }),
        other => Err(format!("unknown frame kind {other:?}")),
    }
}

/// Encodes one frame into its CRC-framed wire bytes.
pub fn encode_frame(f: &Frame) -> Vec<u8> {
    frame(frame_to_json(f).to_string_compact().as_bytes())
}

/// Stats tag for an encoded frame (0 record, 1 snapshot, 2 digest,
/// 3 mark) — lets the pump count traffic without holding the decoded
/// frame.
fn frame_kind(f: &Frame) -> u8 {
    match f {
        Frame::Record { .. } => 0,
        Frame::Snapshot { .. } => 1,
        Frame::Digest { .. } => 2,
        Frame::Mark { .. } => 3,
    }
}

/// Encodes the retained journal tail from absolute position `from` as
/// shared wire frames: plain records as [`Frame::Record`], snapshot
/// records as cheap [`Frame::Mark`] boundary crossings (a contiguously
/// streaming receiver already holds the image's state, so re-shipping —
/// or even re-serialising — the image is pure waste). Returns the
/// `(pos, kind, bytes)` triples the pump fans out per link, or `None`
/// when compaction discarded `from` and the link must be seeded with a
/// full snapshot transfer instead.
fn encode_stream_tail(journal: &Journal, term: u64, from: u64) -> Option<Vec<(u64, u8, Vec<u8>)>> {
    let records = journal.records_from(from)?;
    Some(
        records
            .iter()
            .enumerate()
            .map(|(i, record)| {
                let pos = from + i as u64;
                match record {
                    Record::Snapshot(_) => {
                        let f = Frame::Mark { term, pos };
                        (pos, frame_kind(&f), encode_frame(&f))
                    }
                    _ => (
                        pos,
                        0u8,
                        frame(
                            record_frame_json(term, pos, record)
                                .to_string_compact()
                                .as_bytes(),
                        ),
                    ),
                }
            })
            .collect(),
    )
}

/// Decodes a byte run of frames. A torn trailing frame is tolerated
/// (truncated, flagged `true`); corruption is a hard error.
pub fn decode_frames(bytes: &[u8]) -> Result<(Vec<Frame>, bool), String> {
    let deframed = deframe(bytes)?;
    let mut frames = Vec::with_capacity(deframed.payloads.len());
    for (i, payload) in deframed.payloads.iter().enumerate() {
        let text = std::str::from_utf8(payload).map_err(|e| format!("frame {i}: {e}"))?;
        frames.push(
            json::parse(text)
                .and_then(|v| frame_from_json(&v))
                .map_err(|e| format!("frame {i}: {e}"))?,
        );
    }
    Ok((frames, deframed.torn))
}

/// The frames that carry a journal's retained tail from absolute
/// position `from` onward: snapshot records become [`Frame::Snapshot`],
/// everything else [`Frame::Record`]. When compaction already discarded
/// `from`, the transfer restarts from the latest retained snapshot — the
/// compaction-handoff path a lagging follower catches up through.
pub fn tail_frames(journal: &Journal, term: u64, from: u64) -> Vec<Frame> {
    let (start, records) = match journal.records_from(from) {
        Some(records) => (from, records),
        None => {
            let (pos, _) = journal
                .latest_snapshot()
                .expect("a compacted journal retains its compacting snapshot");
            (
                pos,
                journal.records_from(pos).expect("snapshot is retained"),
            )
        }
    };
    records
        .iter()
        .enumerate()
        .map(|(i, record)| {
            let pos = start + i as u64;
            match record {
                Record::Snapshot(img) => Frame::Snapshot {
                    term,
                    pos,
                    image: img.clone(),
                },
                other => Frame::Record {
                    term,
                    pos,
                    record: other.clone(),
                },
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Follower: the synchronous apply state machine.

/// A follower read, stamped with the bounded-staleness contract: the
/// state answer plus the applied-record watermark it reflects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerRead {
    /// The job's state (`{:?}` of `JobState`, matching the leader's
    /// qstat), or `None` when the follower does not know the job.
    pub state: Option<String>,
    /// Every record through this position is reflected in the answer.
    pub watermark: u64,
    /// The leader term the watermark counts under.
    pub term: u64,
}

/// A follower `PbsServer`: applies the replicated stream through the
/// ordinary mutation paths and tracks the contiguous-prefix watermark.
///
/// Tolerates at-least-once, out-of-order delivery: stale frames are
/// ignored, future records parked in a reorder buffer, and only the
/// contiguous prefix is ever applied. Any apply error or digest mismatch
/// poisons the follower — it stops advancing and reports the error — so
/// a diverged replica can never be promoted silently.
#[derive(Debug, Default)]
pub struct Follower {
    server: Option<PbsServer>,
    term: u64,
    applied: u64,
    buffer: BTreeMap<u64, Record>,
    pending_digests: BTreeMap<u64, u64>,
    pending_marks: BTreeSet<u64>,
    torn_frames: u64,
    error: Option<String>,
}

impl Follower {
    /// An uninitialised follower (term 0, nothing applied); the first
    /// snapshot frame seeds it.
    pub fn new() -> Self {
        Follower::default()
    }

    /// The applied-record watermark: every record through this absolute
    /// position is reflected in the follower's state.
    pub fn watermark(&self) -> u64 {
        self.applied
    }

    /// The leader term the follower is tracking (0 before the first
    /// snapshot).
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The replica state, once seeded.
    pub fn server(&self) -> Option<&PbsServer> {
        self.server.as_ref()
    }

    /// The poisoning error, if the follower diverged or failed to apply.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Torn trailing frames tolerated (truncate-and-warn) so far.
    pub fn torn_frames(&self) -> u64 {
        self.torn_frames
    }

    /// The replica's canonical state digest, once seeded.
    pub fn state_digest(&self) -> Option<String> {
        self.server.as_ref().map(|s| s.state_digest())
    }

    /// Serves a qstat-style read with the staleness stamp.
    pub fn read(&self, job: JobId) -> FollowerRead {
        FollowerRead {
            state: self
                .server
                .as_ref()
                .and_then(|s| s.job(job).ok().map(|j| format!("{:?}", j.state))),
            watermark: self.applied,
            term: self.term,
        }
    }

    /// Surrenders the replica for promotion, with the watermark it is
    /// exact at. The follower is spent afterwards.
    pub fn take_promoted(&mut self) -> Option<(PbsServer, u64)> {
        self.server.take().map(|s| (s, self.applied))
    }

    /// Applies a wire run of frames. Torn trailing frames are truncated
    /// and counted; corruption or divergence poisons the follower.
    pub fn apply_bytes(&mut self, bytes: &[u8]) -> Result<(), String> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let (frames, torn) = decode_frames(bytes).inspect_err(|e| {
            self.error = Some(e.clone());
        })?;
        if torn {
            self.torn_frames += 1;
        }
        for f in frames {
            self.apply_frame(f)?;
        }
        Ok(())
    }

    /// Applies one frame (see the module contract for ordering rules).
    pub fn apply_frame(&mut self, frame: Frame) -> Result<(), String> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let result = self.apply_frame_inner(frame);
        if let Err(e) = &result {
            self.error = Some(e.clone());
        }
        result
    }

    fn apply_frame_inner(&mut self, frame: Frame) -> Result<(), String> {
        match frame {
            Frame::Record { term, pos, record } => {
                // A never-seeded follower adopts the stream's term so
                // reordered records can park in the buffer ahead of the
                // seeding snapshot. Once seeded, records from another
                // term are ignored: a new leader always seeds with its
                // genesis snapshot first, and the hub keeps resending
                // until the watermark moves.
                if self.term == 0 {
                    self.term = term;
                }
                if term != self.term || pos <= self.applied {
                    return Ok(());
                }
                if pos == self.applied + 1 {
                    self.apply_one(pos, record)?;
                    self.drain_buffer()
                } else {
                    self.buffer.insert(pos, record);
                    Ok(())
                }
            }
            Frame::Mark { term, pos } => {
                // Same ordering rules as a record: the marked position is
                // a snapshot record whose image is the state after
                // `pos - 1` — a caught-up replica crosses it in place.
                if self.term == 0 {
                    self.term = term;
                }
                if term != self.term || pos <= self.applied {
                    return Ok(());
                }
                if pos == self.applied + 1 && self.server.is_some() {
                    self.applied = pos;
                    self.check_digests()?;
                    self.drain_buffer()
                } else {
                    self.pending_marks.insert(pos);
                    Ok(())
                }
            }
            Frame::Snapshot { term, pos, image } => {
                if term < self.term {
                    return Ok(());
                }
                if term == self.term && self.server.is_some() {
                    if pos == self.applied || pos == self.applied + 1 {
                        // Snapshot boundary: the leader's image at `pos`
                        // is the state after records 1..pos-1 — exactly
                        // what this replica holds. Verify byte-identity.
                        self.verify_image(pos, &image)?;
                        self.applied = self.applied.max(pos);
                        return self.drain_buffer();
                    }
                    if pos <= self.applied {
                        return Ok(()); // stale duplicate
                    }
                }
                self.install(term, pos, &image)
            }
            Frame::Digest { term, pos, digest } => {
                if self.term == 0 {
                    self.term = term;
                }
                if term != self.term || pos < self.applied {
                    return Ok(());
                }
                if pos == self.applied {
                    self.verify_digest(pos, digest)
                } else {
                    self.pending_digests.insert(pos, digest);
                    Ok(())
                }
            }
        }
    }

    /// Installs a catch-up image: state jumps to `pos`. Buffered records
    /// the image already covers are dropped; later ones stay applicable.
    fn install(&mut self, term: u64, pos: u64, image: &ServerImage) -> Result<(), String> {
        let server = PbsServer::from_image(image).map_err(|e| e.to_string())?;
        if term != self.term {
            self.buffer.clear();
            self.pending_digests.clear();
            self.pending_marks.clear();
            self.term = term;
        } else {
            self.buffer.retain(|&p, _| p > pos);
            self.pending_digests.retain(|&p, _| p >= pos);
            self.pending_marks.retain(|&p| p > pos);
        }
        self.server = Some(server);
        self.applied = pos;
        self.check_digests()?;
        self.drain_buffer()
    }

    fn apply_one(&mut self, pos: u64, record: Record) -> Result<(), String> {
        match record {
            // A snapshot record travelling as a plain record (framed
            // journal feeds): same boundary semantics as Frame::Snapshot.
            Record::Snapshot(img) => {
                if self.server.is_some() {
                    self.verify_image(pos, &img)?;
                    self.applied = pos;
                } else {
                    return self.install(self.term, pos, &img);
                }
            }
            other => {
                let server = self
                    .server
                    .as_mut()
                    .ok_or_else(|| format!("record {pos} before any snapshot"))?;
                server
                    .apply_record(&other)
                    .map_err(|e| format!("apply of record {pos} failed: {e}"))?;
                self.applied = pos;
            }
        }
        self.check_digests()
    }

    fn drain_buffer(&mut self) -> Result<(), String> {
        loop {
            let next = self.applied + 1;
            if self.pending_marks.remove(&next) {
                self.applied = next;
                self.check_digests()?;
            } else if let Some(record) = self.buffer.remove(&next) {
                self.apply_one(next, record)?;
            } else {
                return Ok(());
            }
        }
    }

    fn verify_image(&self, pos: u64, image: &ServerImage) -> Result<(), String> {
        let own = self
            .server
            .as_ref()
            .expect("verify requires a seeded replica")
            .state_digest();
        let theirs = image_to_json(image).to_string_compact();
        if own == theirs {
            Ok(())
        } else {
            Err(format!(
                "replica diverged at snapshot boundary {pos}: \
                 follower {:#018x} vs leader {:#018x}",
                digest64(own.as_bytes()),
                digest64(theirs.as_bytes())
            ))
        }
    }

    fn verify_digest(&self, pos: u64, digest: u64) -> Result<(), String> {
        let own = digest64(
            self.server
                .as_ref()
                .expect("digest check requires a seeded replica")
                .state_digest()
                .as_bytes(),
        );
        if own == digest {
            Ok(())
        } else {
            Err(format!(
                "replica diverged at digest check {pos}: \
                 follower {own:#018x} vs leader {digest:#018x}"
            ))
        }
    }

    /// Verifies (and discards) digest checks the watermark has reached.
    /// Checks for positions the replica jumped past are unverifiable and
    /// dropped.
    fn check_digests(&mut self) -> Result<(), String> {
        while let Some((&pos, &digest)) = self.pending_digests.iter().next() {
            if pos < self.applied {
                self.pending_digests.remove(&pos);
            } else if pos == self.applied {
                self.pending_digests.remove(&pos);
                self.verify_digest(pos, digest)?;
            } else {
                break;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Follower threads.

/// A watermark/health report from a follower thread.
#[derive(Debug, Clone)]
pub struct WatermarkReply {
    /// Leader term the follower tracks.
    pub term: u64,
    /// Applied-record watermark under that term.
    pub applied: u64,
    /// The poisoning error, when the replica diverged.
    pub error: Option<String>,
    /// Torn trailing frames tolerated so far.
    pub torn_frames: u64,
}

/// Messages into a follower thread.
pub enum FollowerMsg {
    /// A wire run of encoded frames.
    Frames(Vec<u8>),
    /// Report term/watermark/health.
    Watermark(Sender<WatermarkReply>),
    /// Serve a watermark-stamped read.
    Read {
        /// The queried job.
        job: JobId,
        /// Where the answer goes.
        reply: Sender<FollowerRead>,
    },
    /// Report the replica's state digest (`None` before seeding).
    DigestQuery(Sender<Option<String>>),
    /// Surrender the replica for promotion; the thread exits after
    /// replying.
    Promote(Sender<Option<(Box<PbsServer>, u64)>>),
    /// Simulated process death: all replica state is dropped; the
    /// follower re-seeds from the next snapshot transfer.
    Crash,
    /// Orderly exit.
    Shutdown,
}

/// A handle to a follower thread: the hub's streaming/ack endpoint plus
/// cloneable read ports for offloaded queries.
pub struct FollowerHandle {
    name: String,
    tx: Sender<FollowerMsg>,
    join: Option<JoinHandle<()>>,
}

/// A cloneable read-only port onto a follower thread — what qstat
/// offloading hands out to reader clients.
#[derive(Clone)]
pub struct FollowerReader {
    tx: Sender<FollowerMsg>,
}

impl FollowerReader {
    /// A watermark-stamped read; `None` when the follower is gone.
    pub fn read(&self, job: JobId) -> Option<FollowerRead> {
        let (tx, rx) = channel();
        self.tx.send(FollowerMsg::Read { job, reply: tx }).ok()?;
        rx.recv_timeout(Duration::from_secs(10)).ok()
    }
}

impl FollowerHandle {
    /// Spawns a follower thread named `name` (thread-leak checks key on
    /// the name prefix).
    pub fn spawn(name: &str) -> FollowerHandle {
        let (tx, rx) = channel();
        let join = thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || follower_main(rx))
            .expect("spawn follower thread");
        FollowerHandle {
            name: name.to_owned(),
            tx,
            join: Some(join),
        }
    }

    /// The follower's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A cloneable read port.
    pub fn reader(&self) -> FollowerReader {
        FollowerReader {
            tx: self.tx.clone(),
        }
    }

    /// Sends a message; `false` when the thread is gone.
    pub fn send(&self, msg: FollowerMsg) -> bool {
        self.tx.send(msg).is_ok()
    }

    /// Synchronous watermark/health query; `None` when the thread is
    /// gone or wedged.
    pub fn watermark(&self) -> Option<WatermarkReply> {
        let (tx, rx) = channel();
        self.tx.send(FollowerMsg::Watermark(tx)).ok()?;
        rx.recv_timeout(Duration::from_secs(30)).ok()
    }

    /// Synchronous state-digest query.
    pub fn digest(&self) -> Option<String> {
        let (tx, rx) = channel();
        self.tx.send(FollowerMsg::DigestQuery(tx)).ok()?;
        rx.recv_timeout(Duration::from_secs(30)).ok()?
    }

    /// Promotes: the thread surrenders its replica (with watermark) and
    /// exits; the handle joins it.
    pub fn promote(mut self) -> Option<(PbsServer, u64)> {
        let (tx, rx) = channel();
        self.tx.send(FollowerMsg::Promote(tx)).ok()?;
        let got = rx.recv_timeout(Duration::from_secs(30)).ok()?;
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        got.map(|(server, watermark)| (*server, watermark))
    }

    /// Orderly shutdown: signals the thread and joins it.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(FollowerMsg::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        // Dropped without shutdown/promote (hub teardown on error
        // paths): still signal and join — no leaked threads, ever.
        let _ = self.tx.send(FollowerMsg::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn follower_main(rx: Receiver<FollowerMsg>) {
    let mut f = Follower::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            FollowerMsg::Frames(bytes) => {
                // Errors poison the follower; surfaced via Watermark.
                let _ = f.apply_bytes(&bytes);
            }
            FollowerMsg::Watermark(reply) => {
                let _ = reply.send(WatermarkReply {
                    term: f.term(),
                    applied: f.watermark(),
                    error: f.error().map(str::to_owned),
                    torn_frames: f.torn_frames(),
                });
            }
            FollowerMsg::Read { job, reply } => {
                let _ = reply.send(f.read(job));
            }
            FollowerMsg::DigestQuery(reply) => {
                let _ = reply.send(f.state_digest());
            }
            FollowerMsg::Promote(reply) => {
                let _ = reply.send(
                    f.take_promoted()
                        .map(|(server, watermark)| (Box::new(server), watermark)),
                );
                return;
            }
            FollowerMsg::Crash => f = Follower::new(),
            FollowerMsg::Shutdown => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Replication fault plan.

/// A scheduled follower "process death" (state dropped, thread stays):
/// fires once the leader has appended `after_record` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowerCrash {
    /// Which follower (hub index).
    pub follower: usize,
    /// Leader `total_appended` coordinate the crash fires at.
    pub after_record: u64,
}

/// Seeded faults on the replication stream. Stream faults only delay
/// convergence (the hub resends, followers reorder-buffer); follower
/// crashes force snapshot re-seeding. Leader kills are scheduled by the
/// daemon's `FaultPlan`, not here — killing the leader is not a stream
/// fault.
#[derive(Debug, Clone, Default)]
pub struct ReplFaultPlan {
    /// Seed for the per-frame fault draws.
    pub seed: u64,
    /// Per-frame probability (‰) the frame is silently dropped.
    pub drop_permille: u32,
    /// Per-frame probability (‰) delivery is deferred one pump.
    pub delay_permille: u32,
    /// Per-batch probability (‰) the pump's frames are shuffled.
    pub reorder_permille: u32,
    /// Scheduled follower crashes.
    pub follower_crashes: Vec<FollowerCrash>,
}

impl ReplFaultPlan {
    /// No faults (the seed is kept for derived draws).
    pub fn none(seed: u64) -> Self {
        ReplFaultPlan {
            seed,
            ..ReplFaultPlan::default()
        }
    }

    /// Derives a fault mix from a seed: moderate drop/delay/reorder
    /// pressure plus possible follower crashes inside `horizon` records.
    ///
    /// Convention (same as `FaultPlan::from_seed`): any NEW field must be
    /// drawn *after* all existing ones so previously pinned seeds keep
    /// their fault pressure.
    pub fn from_seed(seed: u64, followers: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x5245_504c_4943_4154);
        let drop_permille = rng.next_below(150) as u32;
        let delay_permille = rng.next_below(200) as u32;
        let reorder_permille = rng.next_below(250) as u32;
        let mut follower_crashes = Vec::new();
        for follower in 0..followers {
            if rng.chance_permille(300) {
                follower_crashes.push(FollowerCrash {
                    follower,
                    after_record: 1 + rng.next_below(horizon.max(1)),
                });
            }
        }
        ReplFaultPlan {
            seed,
            drop_permille,
            delay_permille,
            reorder_permille,
            follower_crashes,
        }
    }
}

// ---------------------------------------------------------------------------
// The leader-side hub.

/// Hub configuration.
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// Emit a rolling-digest frame every this many records (0 = off).
    pub digest_every: u64,
    /// Refresh follower watermarks every this many pumps (min 1). The
    /// refresh is a synchronous round-trip per live follower — exact,
    /// but the latency is the whole pump cost on a hot path. Shipping
    /// frames never waits for it: a higher setting just batches ack
    /// visibility (go-back-N reacts at the next refresh), and every
    /// consumer that *needs* a fresh watermark (`await_replicated`,
    /// `fail_over`) forces one itself.
    pub ack_every: u64,
    /// Stream faults.
    pub faults: ReplFaultPlan,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            digest_every: 32,
            ack_every: 1,
            faults: ReplFaultPlan::none(0),
        }
    }
}

/// Streaming counters, exposed to tests and the perf harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct HubStats {
    /// Pumps run.
    pub pumps: u64,
    /// Record frames sent (including resends).
    pub records_sent: u64,
    /// Snapshot frames sent (seeding + catch-up transfers).
    pub snapshots_sent: u64,
    /// Boundary-marker frames sent (caught-up compaction crossings).
    pub marks_sent: u64,
    /// Digest frames sent.
    pub digests_sent: u64,
    /// Frames dropped by fault injection.
    pub frames_dropped: u64,
    /// Go-back-N resend episodes (stalled watermark).
    pub resends: u64,
    /// Follower crashes injected by the fault plan.
    pub follower_crashes: u64,
}

struct Link {
    handle: FollowerHandle,
    /// Term of the follower's last watermark report.
    acked_term: u64,
    /// Last reported applied watermark (0 when on another term).
    acked: u64,
    /// Highest position optimistically shipped this term.
    sent_through: u64,
    /// `acked` at the previous pump — stall (go-back-N) detection.
    last_acked: u64,
    /// Frames deferred by the delay fault, delivered next pump.
    delayed: VecDeque<Vec<u8>>,
    /// Outstanding scheduled crashes, ascending.
    crashes: VecDeque<u64>,
    alive: bool,
}

/// One pump's outcome.
#[derive(Debug, Clone, Default)]
pub struct PumpReport {
    /// Leader `total_appended` at pump time.
    pub target: u64,
    /// Min live-follower watermark after the pump's ack refresh (`None`
    /// with no live followers).
    pub replicated: Option<u64>,
    /// Divergence/poisoning errors reported by followers.
    pub errors: Vec<String>,
}

/// What a completed failover reports: what was promoted, at which
/// watermark, and — per the ack mode — what the dead leader took with it.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The term the promoted leader serves under.
    pub new_term: u64,
    /// Name of the promoted follower.
    pub promoted: String,
    /// The promoted replica is byte-identical to the dead leader at this
    /// watermark.
    pub promoted_watermark: u64,
    /// The dead leader's final `total_appended`.
    pub old_appended: u64,
    /// Tail records the dead leader appended but never replicated —
    /// explicitly reported lost.
    pub lost_records: u64,
    /// Of the lost tail, how many had been *acked* to clients. Zero by
    /// construction when acks gate on replication (`ack_after_replicate`).
    pub acked_lost: u64,
}

/// The leader-side replication hub: owns the follower threads, streams
/// the journal tail to each, refreshes acked watermarks, injects stream
/// faults, and runs failover.
///
/// Everything is driven from the owner's thread by [`ReplicationHub::pump`]
/// — the hub never spawns its own timers, so streaming is deterministic
/// given the pump sequence and the fault seed.
pub struct ReplicationHub {
    term: u64,
    digest_every: u64,
    next_digest_at: u64,
    ack_every: u64,
    deferred_errors: Vec<String>,
    faults: ReplFaultPlan,
    rng: SplitMix64,
    links: Vec<Link>,
    stats: HubStats,
}

impl ReplicationHub {
    /// A hub at term 1 with no followers yet.
    pub fn new(cfg: HubConfig) -> Self {
        let rng = SplitMix64::new(cfg.faults.seed ^ 0x4855_4221);
        ReplicationHub {
            term: 1,
            digest_every: cfg.digest_every,
            next_digest_at: if cfg.digest_every > 0 {
                cfg.digest_every
            } else {
                u64::MAX
            },
            ack_every: cfg.ack_every.max(1),
            deferred_errors: Vec::new(),
            faults: cfg.faults,
            rng,
            links: Vec::new(),
            stats: HubStats::default(),
        }
    }

    /// Spawns and attaches a follower thread named `name`. Crash faults
    /// scheduled for this follower index bind to it.
    pub fn add_follower(&mut self, name: &str) {
        let idx = self.links.len();
        let mut crashes: Vec<u64> = self
            .faults
            .follower_crashes
            .iter()
            .filter(|c| c.follower == idx)
            .map(|c| c.after_record)
            .collect();
        crashes.sort_unstable();
        self.links.push(Link {
            handle: FollowerHandle::spawn(name),
            acked_term: 0,
            acked: 0,
            sent_through: 0,
            last_acked: 0,
            delayed: VecDeque::new(),
            crashes: crashes.into(),
            alive: true,
        });
    }

    /// The current leader term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Live follower count.
    pub fn live_followers(&self) -> usize {
        self.links.iter().filter(|l| l.alive).count()
    }

    /// Streaming counters.
    pub fn stats(&self) -> HubStats {
        self.stats
    }

    /// Cached acked watermark per follower (0 for dead followers or
    /// followers still on another term) — conservative, refreshed each
    /// pump, exactly what staleness routing needs.
    pub fn acked_watermarks(&self) -> Vec<u64> {
        self.links
            .iter()
            .map(|l| {
                if l.alive && l.acked_term == self.term {
                    l.acked
                } else {
                    0
                }
            })
            .collect()
    }

    /// Follower names, hub-index order.
    pub fn follower_names(&self) -> Vec<String> {
        self.links
            .iter()
            .map(|l| l.handle.name().to_owned())
            .collect()
    }

    /// A read port onto follower `idx`.
    pub fn reader(&self, idx: usize) -> Option<FollowerReader> {
        self.links.get(idx).map(|l| l.handle.reader())
    }

    /// A watermark-stamped read from follower `idx` (synchronous).
    pub fn read_follower(&self, idx: usize, job: JobId) -> Option<FollowerRead> {
        self.links.get(idx)?.handle.reader().read(job)
    }

    /// Follower `idx`'s state digest (synchronous; drains its stream
    /// backlog first by channel order).
    pub fn follower_digest(&self, idx: usize) -> Option<String> {
        self.links.get(idx)?.handle.digest()
    }

    /// Min live-follower acked watermark this term — the replicated
    /// watermark acks may gate on. `None` with no live followers (a
    /// degenerate single-copy deployment: nothing to wait for).
    pub fn replicated_watermark(&self) -> Option<u64> {
        self.links
            .iter()
            .filter(|l| l.alive)
            .map(|l| {
                if l.acked_term == self.term {
                    l.acked
                } else {
                    0
                }
            })
            .min()
    }

    /// One streaming round: refresh each live follower's watermark,
    /// inject due faults, and ship the journal tail (go-back-N from the
    /// acked watermark on stall; snapshot transfer when the tail was
    /// compacted away).
    pub fn pump(&mut self, leader: &PbsServer) -> PumpReport {
        let journal = leader
            .journal()
            .expect("replication requires the leader to journal");
        let target = journal.total_appended();
        self.stats.pumps += 1;
        // Watermark queries are synchronous round-trips; batching them to
        // every `ack_every`-th pump keeps the ship path one-way. Their
        // replies sit behind all sent frames (channel FIFO), so the values
        // read on a sync pump are identical to what per-pump polling would
        // have read — only the *visibility* of progress is batched.
        let sync = self.ack_every <= 1 || self.stats.pumps.is_multiple_of(self.ack_every);
        let digest_frame = if target >= self.next_digest_at {
            self.next_digest_at = target + self.digest_every;
            Some(Frame::Digest {
                term: self.term,
                pos: target,
                digest: digest64(leader.state_digest().as_bytes()),
            })
        } else {
            None
        };
        let mut report = PumpReport {
            target,
            ..PumpReport::default()
        };
        let term = self.term;
        for link in &mut self.links {
            if !link.alive {
                continue;
            }
            // Deliver frames the delay fault deferred last pump, as one
            // concatenated byte run (the follower deframes runs).
            if !link.delayed.is_empty() {
                let mut run: Vec<u8> = Vec::new();
                for bytes in link.delayed.drain(..) {
                    run.extend_from_slice(&bytes);
                }
                if !link.handle.send(FollowerMsg::Frames(run)) {
                    link.alive = false;
                }
            }
            // Scheduled follower crash: state dropped, thread stays; the
            // follower re-seeds below via snapshot transfer.
            while link.crashes.front().is_some_and(|&c| target >= c) {
                link.crashes.pop_front();
                link.handle.send(FollowerMsg::Crash);
                link.acked_term = 0;
                link.acked = 0;
                link.sent_through = 0;
                link.last_acked = 0;
                link.delayed.clear();
                self.stats.follower_crashes += 1;
            }
            if sync {
                Self::refresh_link(link, term, &mut self.stats, &mut self.deferred_errors);
            }
        }
        report.errors.append(&mut self.deferred_errors);
        // Shared encode cache: every contiguously-streaming link needs the
        // same tail modulo its start position, so serialize each record
        // once per pump and hand each link a byte-clone of its suffix.
        // Snapshot records cross as Mark frames — valid only for a
        // follower that already holds the boundary state. A link that has
        // never acked (fresh, or reset after a crash) has a stateless
        // follower and takes the per-link seed path below: a full
        // snapshot transfer it can install, never a Mark it cannot cross.
        let needs_seed = |l: &Link| l.sent_through == 0 && l.acked == 0;
        let min_from = self
            .links
            .iter()
            .filter(|l| l.alive && l.sent_through < target && !needs_seed(l))
            .map(|l| l.sent_through + 1)
            .min();
        let shared: Option<Vec<(u64, u8, Vec<u8>)>> =
            min_from.and_then(|from| encode_stream_tail(journal, term, from));
        let digest_encoded = digest_frame
            .as_ref()
            .map(|d| (d.pos(), frame_kind(d), encode_frame(d)));
        for link in &mut self.links {
            if !link.alive {
                continue;
            }
            if link.sent_through >= target && digest_encoded.is_none() {
                continue;
            }
            let from = link.sent_through + 1;
            let seed = needs_seed(link);
            let mut frames: Vec<(u64, u8, Vec<u8>)> = if link.sent_through >= target {
                Vec::new()
            } else if let Some(cache) = (!seed).then_some(shared.as_ref()).flatten() {
                cache
                    .iter()
                    .filter(|(pos, _, _)| *pos >= from)
                    .cloned()
                    .collect()
            } else {
                // Seed / heal: a stateless follower, or a start the
                // compactor already discarded — restart the link with a
                // snapshot image it can install, then plain records.
                tail_frames(journal, term, from)
                    .iter()
                    .map(|f| (f.pos(), frame_kind(f), encode_frame(f)))
                    .collect()
            };
            if let Some(d) = &digest_encoded {
                frames.push(d.clone());
            }
            if frames.len() >= 2 && self.rng.chance_permille(self.faults.reorder_permille) {
                self.rng.shuffle(&mut frames);
            }
            let mut out: Vec<u8> = Vec::new();
            for (_, kind, bytes) in frames {
                match kind {
                    0 => self.stats.records_sent += 1,
                    1 => self.stats.snapshots_sent += 1,
                    2 => self.stats.digests_sent += 1,
                    _ => self.stats.marks_sent += 1,
                }
                if self.rng.chance_permille(self.faults.drop_permille) {
                    self.stats.frames_dropped += 1;
                    continue;
                }
                if self.rng.chance_permille(self.faults.delay_permille) {
                    link.delayed.push_back(bytes);
                    continue;
                }
                out.extend_from_slice(&bytes);
            }
            // One channel send per link per pump: every surviving frame
            // rides a single concatenated run, so the follower thread is
            // woken once, not once per record.
            if !out.is_empty() && !link.handle.send(FollowerMsg::Frames(out)) {
                link.alive = false;
            }
            link.sent_through = target;
        }
        report.replicated = self.replicated_watermark();
        report
    }

    /// One synchronous watermark round-trip for `link`: refresh the acked
    /// cursor, detect a stalled stream (go-back-N resend from the acked
    /// prefix), and stash any follower-reported divergence.
    fn refresh_link(link: &mut Link, term: u64, stats: &mut HubStats, errors: &mut Vec<String>) {
        let Some(reply) = link.handle.watermark() else {
            link.alive = false;
            return;
        };
        if let Some(e) = reply.error {
            errors.push(format!("{}: {e}", link.handle.name()));
        }
        link.acked_term = reply.term;
        link.acked = if reply.term == term { reply.applied } else { 0 };
        // Go-back-N: watermark stalled below what we shipped — assume
        // loss, resend from the acked prefix.
        if link.acked < link.sent_through && link.acked == link.last_acked {
            link.sent_through = link.acked;
            stats.resends += 1;
        }
        link.last_acked = link.acked;
        link.sent_through = link.sent_through.max(link.acked);
    }

    /// Forces a watermark round-trip on every live link, regardless of
    /// `ack_every` phase. Consumers that need fresh visibility between
    /// pumps ([`ReplicationHub::await_replicated`], a driver's converge
    /// loop) call this; any follower-reported error surfaces in the next
    /// pump's report.
    pub fn refresh_acks(&mut self) {
        let term = self.term;
        for link in &mut self.links {
            if link.alive {
                Self::refresh_link(link, term, &mut self.stats, &mut self.deferred_errors);
            }
        }
    }

    /// Pumps until every live follower has acked `through` (the
    /// `ack_after_replicate` gate). Faults only delay convergence, so
    /// this terminates; the iteration bound is a wedge guard.
    pub fn await_replicated(&mut self, leader: &PbsServer, through: u64) -> bool {
        for _ in 0..100_000 {
            match self.replicated_watermark() {
                None => return true,
                Some(w) if w >= through => return true,
                _ => {}
            }
            self.pump(leader);
            if self.ack_every > 1 {
                // Batched-ack configs only poll watermarks every few pumps;
                // the gate needs fresh visibility *now*.
                self.refresh_acks();
            }
        }
        false
    }

    /// Leader failover: drains every live follower's stream, promotes
    /// the highest-watermark one (ties break on hub order), bumps the
    /// term, and resets the survivors to re-seed from the new leader's
    /// genesis snapshot on the next pump.
    ///
    /// The caller supplies the dead leader's final `total_appended` and
    /// the watermark through which commands were acked; the report
    /// accounts the unreplicated tail against both. The returned server
    /// has journaling *off* — the caller re-arms per-process flags and
    /// re-enables the journal (its genesis snapshot opens the new term).
    pub fn fail_over(
        &mut self,
        old_appended: u64,
        acked_through: u64,
    ) -> Result<(PbsServer, FailoverReport), String> {
        let mut best: Option<(usize, u64)> = None;
        for (i, link) in self.links.iter_mut().enumerate() {
            if !link.alive {
                continue;
            }
            while let Some(bytes) = link.delayed.pop_front() {
                link.handle.send(FollowerMsg::Frames(bytes));
            }
            let Some(reply) = link.handle.watermark() else {
                link.alive = false;
                continue;
            };
            if reply.error.is_some() || reply.term != self.term {
                continue; // never promote a diverged or stale-term replica
            }
            if best.is_none_or(|(_, w)| reply.applied > w) {
                best = Some((i, reply.applied));
            }
        }
        let (idx, _) = best.ok_or("no live follower to promote")?;
        let link = self.links.remove(idx);
        let promoted_name = link.handle.name().to_owned();
        let (server, watermark) = link
            .handle
            .promote()
            .ok_or("promoted follower had no replica state")?;
        self.term += 1;
        self.next_digest_at = if self.digest_every > 0 {
            self.digest_every
        } else {
            u64::MAX
        };
        for l in &mut self.links {
            l.acked_term = 0;
            l.acked = 0;
            l.sent_through = 0;
            l.last_acked = 0;
            l.delayed.clear();
        }
        let lost_records = old_appended.saturating_sub(watermark);
        let report = FailoverReport {
            new_term: self.term,
            promoted: promoted_name,
            promoted_watermark: watermark,
            old_appended,
            lost_records,
            acked_lost: acked_through.saturating_sub(watermark),
        };
        Ok((server, report))
    }

    /// Shuts down every follower thread and joins it.
    pub fn shutdown(&mut self) {
        for link in self.links.drain(..) {
            link.handle.shutdown();
        }
    }
}

// ---------------------------------------------------------------------------
// Read routing with the read-your-writes staleness bound.

/// Routes qstat-style reads to followers under the bounded-staleness
/// contract. With `read_your_writes` on, a connection's reads only go to
/// a follower whose acked watermark covers the connection's last acked
/// write — otherwise the read falls back to the leader, so an acked
/// write can never be un-observed.
#[derive(Debug, Default)]
pub struct ReadRouter {
    read_your_writes: bool,
    last_write: HashMap<u64, u64>,
    rr: usize,
}

impl ReadRouter {
    /// A router; `read_your_writes` arms the per-connection bound.
    pub fn new(read_your_writes: bool) -> Self {
        ReadRouter {
            read_your_writes,
            ..ReadRouter::default()
        }
    }

    /// Notes that `conn`'s write was acked at `watermark`.
    pub fn note_write(&mut self, conn: u64, watermark: u64) {
        let w = self.last_write.entry(conn).or_insert(0);
        *w = (*w).max(watermark);
    }

    /// The watermark a follower must have acked to serve `conn` (0 when
    /// read-your-writes is off or the connection never wrote).
    pub fn required_watermark(&self, conn: u64) -> u64 {
        if !self.read_your_writes {
            return 0;
        }
        self.last_write.get(&conn).copied().unwrap_or(0)
    }

    /// Picks a follower (round-robin among those satisfying the bound)
    /// for `conn`'s read; `None` means serve from the leader.
    pub fn pick(&mut self, conn: u64, acked: &[u64]) -> Option<usize> {
        if acked.is_empty() {
            return None;
        }
        let need = self.required_watermark(conn);
        let n = acked.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            if acked[i] >= need {
                self.rr = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_cluster::Cluster;
    use dynbatch_core::{
        AllocPolicy, DfsConfig, GroupId, JobSpec, SchedulerConfig, SimDuration, SimTime, UserId,
    };
    use dynbatch_sched::Maui;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn rigid(name: &str, user: u32, cores: u32, secs: u64) -> JobSpec {
        JobSpec::rigid(
            name,
            UserId(user),
            GroupId(0),
            cores,
            SimDuration::from_secs(secs),
        )
    }

    fn hp_maui() -> Maui {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        Maui::new(cfg)
    }

    fn cycle(server: &mut PbsServer, maui: &mut Maui, now: SimTime) {
        let snap = server.snapshot(now);
        let outcome = maui.iterate(&snap);
        server.apply(&outcome, now);
    }

    /// A journaled leader driven through a small but eventful script:
    /// submits, scheduler starts, completions, a qdel.
    fn scripted_leader(snapshot_every: usize) -> PbsServer {
        let mut s = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
        s.enable_journal(snapshot_every);
        let mut m = hp_maui();
        let mut ids = Vec::new();
        for k in 0..6u64 {
            let id = s
                .qsub(rigid(&format!("J{k}"), (k % 3) as u32, 8, 50 + k), t(k))
                .unwrap();
            ids.push(id);
            cycle(&mut s, &mut m, t(k));
        }
        s.job_finished(ids[0], t(20)).unwrap();
        s.qdel(ids[5], t(21)).unwrap();
        cycle(&mut s, &mut m, t(22));
        s.job_finished(ids[1], t(30)).unwrap();
        cycle(&mut s, &mut m, t(31));
        s
    }

    #[test]
    fn crc_framing_roundtrip() {
        let payloads: Vec<&[u8]> = vec![b"hello", b"", b"{\"k\":1}"];
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&frame(p));
        }
        let got = deframe(&wire).unwrap();
        assert!(!got.torn);
        assert_eq!(got.payloads, payloads);
    }

    #[test]
    fn bit_flip_is_hard_error_truncation_is_torn() {
        let mut wire = frame(b"abcdef");
        wire.extend_from_slice(&frame(b"ghijkl"));
        // Bit-flip inside the second payload: CRC catches it.
        let mut flipped = wire.clone();
        let n = flipped.len();
        flipped[n - 3] ^= 0x40;
        let err = deframe(&flipped).unwrap_err();
        assert!(err.contains("CRC mismatch"), "{err}");
        // Truncation mid-frame: torn tail, intact prefix survives.
        for cut in 1..8 + 6 {
            let got = deframe(&wire[..wire.len() - cut]).unwrap();
            assert!(got.torn, "cut {cut} should be torn");
            assert_eq!(got.payloads, vec![b"abcdef".to_vec()]);
        }
    }

    #[test]
    fn framed_journal_roundtrip_and_torn_tail() {
        let leader = scripted_leader(0);
        let journal = leader.journal().unwrap();
        let wire = journal_to_bytes(journal);
        let (back, warn) = journal_from_bytes(&wire).unwrap();
        assert!(warn.is_none());
        assert_eq!(back.len(), journal.len());
        assert_eq!(
            PbsServer::recover(back).unwrap().state_digest(),
            leader.state_digest()
        );
        // Torn trailing record: truncate-and-warn, prefix intact.
        let (short, warn) = journal_from_bytes(&wire[..wire.len() - 5]).unwrap();
        assert_eq!(short.len(), journal.len() - 1);
        assert!(warn.unwrap().contains("torn"));
    }

    #[test]
    fn frame_json_roundtrip() {
        let leader = scripted_leader(0);
        let frames = tail_frames(leader.journal().unwrap(), 3, 1);
        assert!(!frames.is_empty());
        for f in &frames {
            let back = frame_from_json(&frame_to_json(f)).unwrap();
            assert_eq!(
                frame_to_json(&back).to_string_compact(),
                frame_to_json(f).to_string_compact()
            );
        }
        let d = Frame::Digest {
            term: 7,
            pos: 42,
            digest: 0xdead_beef_dead_beef,
        };
        let back = frame_from_json(&frame_to_json(&d)).unwrap();
        assert_eq!(
            frame_to_json(&back).to_string_compact(),
            frame_to_json(&d).to_string_compact()
        );
    }

    #[test]
    fn follower_reaches_leader_digest_in_order() {
        let leader = scripted_leader(0);
        let mut f = Follower::new();
        for frame in tail_frames(leader.journal().unwrap(), 1, 1) {
            f.apply_frame(frame).unwrap();
        }
        assert_eq!(f.watermark(), leader.journal().unwrap().total_appended());
        assert_eq!(f.state_digest().unwrap(), leader.state_digest());
        assert!(f.error().is_none());
    }

    #[test]
    fn follower_tolerates_reorder_dup_and_checks_digests() {
        let leader = scripted_leader(0);
        let mut frames = tail_frames(leader.journal().unwrap(), 1, 1);
        let top = leader.journal().unwrap().total_appended();
        frames.push(Frame::Digest {
            term: 1,
            pos: top,
            digest: digest64(leader.state_digest().as_bytes()),
        });
        // Deliver in reverse with every frame duplicated: the reorder
        // buffer + dup suppression must still converge byte-identically.
        let mut f = Follower::new();
        for frame in frames.iter().rev() {
            f.apply_frame(frame.clone()).unwrap();
            f.apply_frame(frame.clone()).unwrap();
        }
        assert_eq!(f.watermark(), top);
        assert_eq!(f.state_digest().unwrap(), leader.state_digest());
        // A wrong digest frame must poison.
        let mut bad = Follower::new();
        for frame in tail_frames(leader.journal().unwrap(), 1, 1) {
            bad.apply_frame(frame).unwrap();
        }
        assert!(bad
            .apply_frame(Frame::Digest {
                term: 1,
                pos: top,
                digest: 1,
            })
            .is_err());
        assert!(bad.error().is_some());
    }

    #[test]
    fn follower_snapshot_boundary_verifies() {
        // snapshot_every = 3 → the script crosses several boundaries;
        // every Snapshot record doubles as a byte-identity check.
        let leader = scripted_leader(3);
        let mut f = Follower::new();
        for frame in tail_frames(leader.journal().unwrap(), 1, 1) {
            f.apply_frame(frame).unwrap();
        }
        assert_eq!(f.state_digest().unwrap(), leader.state_digest());
    }

    #[test]
    fn catchup_via_snapshot_after_compaction() {
        // Leader compacts aggressively; a follower joining late must
        // catch up from the latest snapshot, not pos 1.
        let leader = scripted_leader(4);
        let journal = leader.journal().unwrap();
        assert!(
            journal.records_from(1).is_none(),
            "script must compact for this test"
        );
        let frames = tail_frames(journal, 1, 1);
        assert!(matches!(frames[0], Frame::Snapshot { .. }));
        let mut f = Follower::new();
        for frame in frames {
            f.apply_frame(frame).unwrap();
        }
        assert_eq!(f.watermark(), journal.total_appended());
        assert_eq!(f.state_digest().unwrap(), leader.state_digest());
    }

    #[test]
    fn hub_streams_and_fails_over() {
        let mut hub = ReplicationHub::new(HubConfig {
            digest_every: 4,
            faults: ReplFaultPlan::none(7),
            ..HubConfig::default()
        });
        hub.add_follower("tst-repl-a");
        hub.add_follower("tst-repl-b");
        let mut leader = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
        leader.enable_journal(0);
        let mut m = hp_maui();
        for k in 0..5u64 {
            leader
                .qsub(rigid(&format!("H{k}"), 0, 8, 30), t(k))
                .unwrap();
            cycle(&mut leader, &mut m, t(k));
            hub.pump(&leader);
        }
        let top = leader.journal().unwrap().total_appended();
        assert!(hub.await_replicated(&leader, top));
        assert_eq!(hub.replicated_watermark(), Some(top));
        for i in 0..2 {
            assert_eq!(hub.follower_digest(i).unwrap(), leader.state_digest());
        }
        // Watermark-stamped follower read.
        let read = hub.read_follower(0, dynbatch_core::JobId(1)).unwrap();
        assert_eq!(read.watermark, top);
        assert!(read.state.is_some());
        // Leader dies; highest-watermark follower promotes byte-identically.
        let expect = leader.state_digest();
        let (promoted, report) = hub.fail_over(top, top).unwrap();
        assert_eq!(promoted.state_digest(), expect);
        assert_eq!(report.promoted_watermark, top);
        assert_eq!(report.new_term, 2);
        assert_eq!(report.lost_records, 0);
        assert_eq!(report.acked_lost, 0);
        // The survivor re-seeds under the new term and converges again.
        let mut leader = promoted;
        leader.enable_journal(0);
        leader.qsub(rigid("after", 1, 4, 10), t(50)).unwrap();
        let top2 = leader.journal().unwrap().total_appended();
        assert!(hub.await_replicated(&leader, top2));
        assert_eq!(hub.follower_digest(0).unwrap(), leader.state_digest());
        hub.shutdown();
    }

    #[test]
    fn hub_converges_under_stream_faults() {
        let faults = ReplFaultPlan {
            seed: 11,
            drop_permille: 200,
            delay_permille: 200,
            reorder_permille: 300,
            follower_crashes: vec![FollowerCrash {
                follower: 0,
                after_record: 5,
            }],
        };
        let mut hub = ReplicationHub::new(HubConfig {
            digest_every: 3,
            faults,
            ..HubConfig::default()
        });
        hub.add_follower("tst-replf-a");
        hub.add_follower("tst-replf-b");
        let mut leader = PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack);
        leader.enable_journal(5);
        let mut m = hp_maui();
        for k in 0..8u64 {
            leader
                .qsub(rigid(&format!("F{k}"), (k % 2) as u32, 8, 20), t(k))
                .unwrap();
            cycle(&mut leader, &mut m, t(k));
            hub.pump(&leader);
        }
        let top = leader.journal().unwrap().total_appended();
        assert!(hub.await_replicated(&leader, top));
        for i in 0..2 {
            assert_eq!(hub.follower_digest(i).unwrap(), leader.state_digest());
        }
        assert!(hub.stats().follower_crashes >= 1);
        hub.shutdown();
    }

    #[test]
    fn read_router_respects_read_your_writes() {
        let mut r = ReadRouter::new(true);
        // No writes yet: any follower may serve.
        assert!(r.pick(1, &[0, 0]).is_some());
        r.note_write(1, 10);
        assert_eq!(r.required_watermark(1), 10);
        // Neither follower has caught up: leader fallback.
        assert_eq!(r.pick(1, &[5, 9]), None);
        // Exactly one qualifies.
        assert_eq!(r.pick(1, &[5, 10]), Some(1));
        // Another connection never wrote: unconstrained.
        assert!(r.pick(2, &[5, 9]).is_some());
        // With read-your-writes off the bound is never applied.
        let mut loose = ReadRouter::new(false);
        loose.note_write(1, 10);
        assert_eq!(loose.required_watermark(1), 0);
        assert!(loose.pick(1, &[0, 0]).is_some());
    }
}
