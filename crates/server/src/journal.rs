//! Write-ahead state journal for the server — the crash-durability layer.
//!
//! Real Torque persists every job under `server_priv/` so a `pbs_server`
//! crash does not lose the queue; this module is the equivalent for
//! [`crate::PbsServer`]. The journal is an **append-only** sequence of
//! newline-delimited compact-JSON records. Two kinds of record exist:
//!
//! * **Command records** — the *inputs* of every state mutation (`qsub`,
//!   `qdel`, `tm_dynget`/`tm_dynfree`, job completion, the applied
//!   [`IterationOutcome`], negotiation expiries, node fail/repair). The
//!   server is deterministic given its inputs in order (allocation
//!   planning tie-breaks on `(cores_idle, id)`), so replaying command
//!   records reproduces the exact state — including node placements.
//! * **Snapshot records** — a full [`ServerImage`] of the durable state.
//!   The journal always starts with one (the genesis snapshot written by
//!   [`crate::PbsServer::enable_journal`]); periodic *compacting*
//!   snapshots replace the whole history with one fresh image so the
//!   journal stays bounded on long runs.
//!
//! Recovery ([`crate::PbsServer::recover`]) loads the latest snapshot and
//! replays every record after it. Scheduler soft state (DFS accumulators,
//! plan caches, the incremental timeline) is *not* journalled: it is
//! derived state, rebuilt by the fresh scheduler after restart.

use dynbatch_cluster::Allocation;
use dynbatch_core::json::{model, Json};
use dynbatch_core::{AllocPolicy, Job, JobId, JobOutcome, JobSpec, NodeId, SimTime, UserId};
use dynbatch_sched::{
    DfsReject, DynDecision, IterationOutcome, ResizeDecision, StartDecision, UsageHistory,
};

/// A pending dynamic request, as captured in a snapshot record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingDynImage {
    /// The evolving job in `DynQueued`.
    pub job: JobId,
    /// Cores requested.
    pub extra_cores: u32,
    /// FIFO sequence number.
    pub seq: u64,
    /// Negotiation deadline (`None` = reject-immediately protocol).
    pub deadline: Option<SimTime>,
}

/// A full image of the server's durable state — the payload of a snapshot
/// record, and (serialised) the canonical state digest the crash-recovery
/// suite compares byte-for-byte.
///
/// Scheduler-coupling soft state (`ProfileDelta` buffer, snapshot epoch)
/// is deliberately absent: recovery breaks timeline continuity, which the
/// incremental-timeline protocol already handles by a full rebuild on the
/// first epoch gap.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerImage {
    /// Next `qsub` id.
    pub next_job_id: u64,
    /// Next dynamic-request FIFO seq.
    pub next_dyn_seq: u64,
    /// Placement policy.
    pub alloc_policy: AllocPolicy,
    /// Guaranteeing site policy flag.
    pub guarantee_evolving: bool,
    /// Installed cores per node, by node index.
    pub node_cores: Vec<u32>,
    /// Nodes currently failed.
    pub down_nodes: Vec<NodeId>,
    /// Every known job, with its exact allocation if active.
    pub jobs: Vec<(Job, Option<Allocation>)>,
    /// Pending dynamic requests, in job-id order.
    pub dyn_pending: Vec<PendingDynImage>,
    /// The accounting log, in emission order.
    pub outcomes: Vec<JobOutcome>,
    /// Per-user fairshare usage in core-milliseconds (closed segments),
    /// in user-id order.
    pub usage: Vec<(UserId, u64)>,
    /// Open usage-segment cursors (job, segment start), in job-id order.
    pub usage_since: Vec<(JobId, SimTime)>,
    /// Decayed resource-hour accounts (time-aware fairness), bit-exact.
    pub usage_hist: UsageHistory,
}

/// One journal record.
#[derive(Debug, Clone)]
pub enum Record {
    /// A full state image (genesis or compaction point).
    Snapshot(Box<ServerImage>),
    /// `qsub` — the assigned id is implied by replay order.
    Submit {
        /// The submitted spec.
        spec: JobSpec,
        /// Submission instant.
        now: SimTime,
    },
    /// `qdel`.
    Qdel {
        /// The deleted job.
        job: JobId,
        /// Deletion instant.
        now: SimTime,
    },
    /// A forwarded `tm_dynget()` (negotiated or not).
    DynGet {
        /// The evolving job.
        job: JobId,
        /// Cores requested.
        extra_cores: u32,
        /// Negotiation deadline.
        deadline: Option<SimTime>,
        /// Request instant.
        now: SimTime,
    },
    /// A `tm_dynfree()` release.
    DynFree {
        /// The releasing job.
        job: JobId,
        /// The released hosts.
        released: Allocation,
        /// Release instant.
        now: SimTime,
    },
    /// The application exited normally.
    Finish {
        /// The finished job.
        job: JobId,
        /// Completion instant.
        now: SimTime,
    },
    /// An applied scheduler outcome (starts, grants/rejects, preempts,
    /// resizes). DFS delay charges and observability-only fields are
    /// dropped: `apply` never reads them.
    Outcome {
        /// The reduced outcome.
        outcome: IterationOutcome,
        /// Application instant.
        now: SimTime,
    },
    /// A single seq-matched negotiation expiry that fired.
    ExpireOne {
        /// The evolving job.
        job: JobId,
        /// The expired request's seq.
        seq: u64,
        /// Expiry instant.
        now: SimTime,
    },
    /// A deadline sweep that expired at least one request.
    ExpireSweep {
        /// Sweep instant.
        now: SimTime,
    },
    /// Node failure (victims requeued).
    NodeFailed {
        /// The failed node.
        node: NodeId,
        /// Failure instant.
        now: SimTime,
    },
    /// Node repair.
    NodeRepaired {
        /// The repaired node.
        node: NodeId,
    },
    /// The guaranteeing site policy was toggled.
    Guarantee {
        /// New value.
        on: bool,
    },
}

/// The append-only write-ahead journal: records plus the bookkeeping
/// needed for compaction.
///
/// Records are kept structured and serialised lazily ([`Journal::to_text`]
/// renders the durable form): appending is on the server's hot path —
/// every scheduler cycle logs its outcome — so the log must cost a push,
/// not a JSON render. Round-trip fidelity of the text form is pinned by
/// this module's serialisation tests.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    entries: Vec<Record>,
    /// Indices of snapshot records within `entries`.
    snapshot_at: Vec<usize>,
    /// Compaction interval: once this many records accumulate after the
    /// last snapshot, the owner writes a compacting snapshot. `0` = never.
    snapshot_every: usize,
    /// Monotonic count of every record ever appended — unlike
    /// [`Journal::len`] it is *not* reset by compaction, so it positions
    /// crash points ("die after record *k*") stably across snapshots.
    total_appended: u64,
    /// Lowest absolute position compaction must keep (0 = unrestricted).
    /// Replication raises this to the replicated watermark so a hot
    /// follower's tail is never compacted out from under it — truncating
    /// the log past what the replicas confirmed would force a full
    /// snapshot transfer on every compaction.
    retain_floor: u64,
}

impl Journal {
    /// An empty journal that never auto-compacts.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Sets the compaction interval (`0` disables compaction).
    pub fn set_snapshot_every(&mut self, every: usize) {
        self.snapshot_every = every;
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no record has been written.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total records ever appended, across compactions.
    pub fn total_appended(&self) -> u64 {
        self.total_appended
    }

    /// Appends one record.
    pub fn append(&mut self, record: Record) {
        if matches!(record, Record::Snapshot(_)) {
            self.snapshot_at.push(self.entries.len());
        }
        self.entries.push(record);
        self.total_appended += 1;
    }

    /// Records appended since the last snapshot (the whole journal when no
    /// snapshot exists — cannot happen once the genesis record is written).
    pub fn since_last_snapshot(&self) -> usize {
        match self.snapshot_at.last() {
            Some(&i) => self.entries.len() - i - 1,
            None => self.entries.len(),
        }
    }

    /// True when the compaction interval has been reached.
    pub fn wants_snapshot(&self) -> bool {
        self.snapshot_every > 0 && self.since_last_snapshot() >= self.snapshot_every
    }

    /// Raises the compaction retain floor: records at absolute positions
    /// `>= pos` survive future compactions even though the compacting
    /// image covers them. Monotonic — a lower `pos` than the current
    /// floor is ignored. Replication calls this with its replicated
    /// watermark + 1 so followers can always stream plain records.
    pub fn set_retain_floor(&mut self, pos: u64) {
        self.retain_floor = self.retain_floor.max(pos);
    }

    /// Replaces the compactable history with one snapshot record — the
    /// compaction rule: everything before (and including) the last image
    /// is re-derivable from the image alone. Records at or above the
    /// retain floor ([`Journal::set_retain_floor`]) are kept in front of
    /// the new snapshot for replication to finish streaming.
    pub fn compact(&mut self, image: ServerImage) {
        let drop_n = if self.retain_floor == 0 {
            self.entries.len()
        } else {
            let first = self.first_pos();
            self.retain_floor
                .saturating_sub(first)
                .min(self.entries.len() as u64) as usize
        };
        self.entries.drain(..drop_n);
        self.snapshot_at = self
            .snapshot_at
            .iter()
            .filter_map(|&i| i.checked_sub(drop_n))
            .collect();
        self.append(Record::Snapshot(Box::new(image)));
    }

    /// The journal truncated to its first `k` records — "the server died
    /// right after record `k − 1` hit the log".
    pub fn prefix(&self, k: usize) -> Journal {
        let k = k.min(self.entries.len());
        Journal {
            entries: self.entries[..k].to_vec(),
            snapshot_at: self
                .snapshot_at
                .iter()
                .copied()
                .filter(|&i| i < k)
                .collect(),
            snapshot_every: self.snapshot_every,
            total_appended: k as u64,
            retain_floor: 0,
        }
    }

    /// The durable text form: newline-delimited compact JSON.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for record in &self.entries {
            s.push_str(&record_to_json(record).to_string_compact());
            s.push('\n');
        }
        s
    }

    /// Parses a journal written by [`Journal::to_text`], validating every
    /// record.
    pub fn from_text(text: &str) -> Result<Journal, String> {
        let mut j = Journal::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let record = record_from_json(&dynbatch_core::json::parse(line)?)
                .map_err(|e| format!("record {i}: {e}"))?;
            j.append(record);
        }
        Ok(j)
    }

    /// Every record, in append order.
    pub fn records(&self) -> &[Record] {
        &self.entries
    }

    /// Absolute (1-based, compaction-stable) position of the first record
    /// still retained — `entries[0]` is the `first_pos()`-th record ever
    /// appended. `0` when the journal is empty.
    pub fn first_pos(&self) -> u64 {
        if self.entries.is_empty() {
            0
        } else {
            self.total_appended - self.entries.len() as u64 + 1
        }
    }

    /// The retained records at absolute positions `>= pos` (the
    /// replication tail a follower at watermark `pos - 1` still needs).
    /// `None` when compaction already discarded position `pos` — the
    /// caller must fall back to a snapshot transfer.
    pub fn records_from(&self, pos: u64) -> Option<&[Record]> {
        if pos > self.total_appended {
            return Some(&[]);
        }
        let first = self.first_pos();
        if pos < first {
            return None;
        }
        Some(&self.entries[(pos - first) as usize..])
    }

    /// The latest snapshot record still retained, with its absolute
    /// position — the catch-up image replication hands a follower that
    /// fell behind the compaction horizon.
    pub fn latest_snapshot(&self) -> Option<(u64, &ServerImage)> {
        let &i = self.snapshot_at.last()?;
        let Record::Snapshot(img) = &self.entries[i] else {
            unreachable!("snapshot_at indexes snapshot records");
        };
        Some((self.first_pos() + i as u64, img))
    }

    /// Parses a journal like [`Journal::from_text`], but tolerates a torn
    /// *trailing* record — the classic partial-write crash artifact — by
    /// truncating it and returning a warning instead of failing. A
    /// malformed record with valid records after it is still a hard error
    /// (that is corruption, not a torn tail).
    pub fn from_text_tolerant(text: &str) -> Result<(Journal, Option<String>), String> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .collect();
        let mut j = Journal::new();
        for (k, &(i, line)) in lines.iter().enumerate() {
            let parsed = dynbatch_core::json::parse(line).and_then(|v| record_from_json(&v));
            match parsed {
                Ok(record) => j.append(record),
                Err(e) if k + 1 == lines.len() => {
                    return Ok((j, Some(format!("truncated torn trailing record {i}: {e}"))))
                }
                Err(e) => return Err(format!("record {i}: {e}")),
            }
        }
        Ok((j, None))
    }
}

// ---------------------------------------------------------------------------
// Record serialisation. Compact, type-tagged, exact-integer JSON built on
// `core::json` (no serde in this offline-built repo).

fn time(t: SimTime) -> Json {
    Json::UInt(t.as_millis())
}

fn opt_time(t: Option<SimTime>) -> Json {
    t.map(time).unwrap_or(Json::Null)
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.req(key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not a non-negative integer"))
}

fn u32_field(v: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(u64_field(v, key)?).map_err(|_| format!("field `{key}` exceeds u32"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    v.req(key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a bool"))
}

fn time_field(v: &Json, key: &str) -> Result<SimTime, String> {
    Ok(SimTime::from_millis(u64_field(v, key)?))
}

fn opt_time_field(v: &Json, key: &str) -> Result<Option<SimTime>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(t) => {
            Ok(Some(SimTime::from_millis(t.as_u64().ok_or_else(|| {
                format!("field `{key}` is not an integer")
            })?)))
        }
    }
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.req(key)?
        .as_arr()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

/// `[[node, cores], …]` — `Allocation` iterates in node order, so the form
/// is canonical.
pub fn alloc_to_json(alloc: &Allocation) -> Json {
    Json::Arr(
        alloc
            .entries()
            .map(|(node, cores)| {
                Json::Arr(vec![Json::UInt(node.0 as u64), Json::UInt(cores as u64)])
            })
            .collect(),
    )
}

/// Parses an allocation written by [`alloc_to_json`].
pub fn alloc_from_json(v: &Json) -> Result<Allocation, String> {
    let pairs = v.as_arr().ok_or("allocation is not an array")?;
    let mut alloc = Allocation::empty();
    for p in pairs {
        let pair = p.as_arr().ok_or("allocation entry is not a pair")?;
        let [node, cores] = pair else {
            return Err("allocation entry is not a pair".into());
        };
        let node = node.as_u64().ok_or("allocation node is not an integer")?;
        let cores = cores.as_u64().ok_or("allocation cores is not an integer")?;
        let node = u32::try_from(node).map_err(|_| "allocation node exceeds u32".to_owned())?;
        let cores = u32::try_from(cores).map_err(|_| "allocation cores exceeds u32".to_owned())?;
        alloc.add(NodeId(node), cores);
    }
    Ok(alloc)
}

fn policy_name(p: AllocPolicy) -> &'static str {
    match p {
        AllocPolicy::Pack => "pack",
        AllocPolicy::Spread => "spread",
        AllocPolicy::NodeExclusive => "node_exclusive",
    }
}

fn policy_from_name(name: &str) -> Result<AllocPolicy, String> {
    match name {
        "pack" => Ok(AllocPolicy::Pack),
        "spread" => Ok(AllocPolicy::Spread),
        "node_exclusive" => Ok(AllocPolicy::NodeExclusive),
        other => Err(format!("unknown alloc policy `{other}`")),
    }
}

fn reject_to_json(r: &DfsReject) -> Json {
    match r {
        DfsReject::NoResources => Json::obj(vec![("why", Json::Str("no_resources".into()))]),
        DfsReject::PermDenied { user } => Json::obj(vec![
            ("why", Json::Str("perm_denied".into())),
            ("user", Json::UInt(user.0 as u64)),
        ]),
        DfsReject::SingleExceeded {
            job,
            would_be,
            limit,
        } => Json::obj(vec![
            ("why", Json::Str("single_exceeded".into())),
            ("job", Json::UInt(job.0)),
            ("would_be_ms", Json::UInt(would_be.as_millis())),
            ("limit_ms", Json::UInt(limit.as_millis())),
        ]),
        DfsReject::UserTargetExceeded {
            user,
            would_be,
            limit,
        } => Json::obj(vec![
            ("why", Json::Str("user_target_exceeded".into())),
            ("user", Json::UInt(user.0 as u64)),
            ("would_be_ms", Json::UInt(would_be.as_millis())),
            ("limit_ms", Json::UInt(limit.as_millis())),
        ]),
        DfsReject::GroupTargetExceeded {
            group,
            would_be,
            limit,
        } => Json::obj(vec![
            ("why", Json::Str("group_target_exceeded".into())),
            ("group", Json::UInt(group.0 as u64)),
            ("would_be_ms", Json::UInt(would_be.as_millis())),
            ("limit_ms", Json::UInt(limit.as_millis())),
        ]),
    }
}

fn reject_from_json(v: &Json) -> Result<DfsReject, String> {
    use dynbatch_core::{GroupId, SimDuration, UserId};
    let dur = |key: &str| -> Result<SimDuration, String> {
        Ok(SimDuration::from_millis(u64_field(v, key)?))
    };
    match v.req("why")?.as_str().ok_or("`why` is not a string")? {
        "no_resources" => Ok(DfsReject::NoResources),
        "perm_denied" => Ok(DfsReject::PermDenied {
            user: UserId(u32_field(v, "user")?),
        }),
        "single_exceeded" => Ok(DfsReject::SingleExceeded {
            job: JobId(u64_field(v, "job")?),
            would_be: dur("would_be_ms")?,
            limit: dur("limit_ms")?,
        }),
        "user_target_exceeded" => Ok(DfsReject::UserTargetExceeded {
            user: UserId(u32_field(v, "user")?),
            would_be: dur("would_be_ms")?,
            limit: dur("limit_ms")?,
        }),
        "group_target_exceeded" => Ok(DfsReject::GroupTargetExceeded {
            group: GroupId(u32_field(v, "group")?),
            would_be: dur("would_be_ms")?,
            limit: dur("limit_ms")?,
        }),
        other => Err(format!("unknown reject reason `{other}`")),
    }
}

fn resize_to_json(r: &ResizeDecision) -> Json {
    Json::obj(vec![
        ("job", Json::UInt(r.job.0)),
        ("from", Json::UInt(r.from_cores as u64)),
        ("to", Json::UInt(r.to_cores as u64)),
    ])
}

fn resize_from_json(v: &Json) -> Result<ResizeDecision, String> {
    Ok(ResizeDecision {
        job: JobId(u64_field(v, "job")?),
        from_cores: u32_field(v, "from")?,
        to_cores: u32_field(v, "to")?,
    })
}

fn dyn_decision_to_json(d: &DynDecision) -> Json {
    match d {
        DynDecision::Granted {
            job,
            extra_cores,
            preempted,
            shrunk,
            ..
        } => Json::obj(vec![
            ("kind", Json::Str("grant".into())),
            ("job", Json::UInt(job.0)),
            ("extra", Json::UInt(*extra_cores as u64)),
            (
                "preempted",
                Json::Arr(preempted.iter().map(|j| Json::UInt(j.0)).collect()),
            ),
            (
                "shrunk",
                Json::Arr(shrunk.iter().map(resize_to_json).collect()),
            ),
        ]),
        DynDecision::Rejected { job, reason } => Json::obj(vec![
            ("kind", Json::Str("reject".into())),
            ("job", Json::UInt(job.0)),
            ("reason", reject_to_json(reason)),
        ]),
        DynDecision::Deferred {
            job,
            reason,
            available_hint,
        } => Json::obj(vec![
            ("kind", Json::Str("defer".into())),
            ("job", Json::UInt(job.0)),
            ("reason", reject_to_json(reason)),
            ("hint_ms", opt_time(*available_hint)),
        ]),
    }
}

fn dyn_decision_from_json(v: &Json) -> Result<DynDecision, String> {
    match v.req("kind")?.as_str().ok_or("`kind` is not a string")? {
        "grant" => Ok(DynDecision::Granted {
            job: JobId(u64_field(v, "job")?),
            extra_cores: u32_field(v, "extra")?,
            // DFS delay charges are scheduler soft state; `apply` ignores
            // them, so the journal does not carry them.
            delays: Vec::new(),
            preempted: arr_field(v, "preempted")?
                .iter()
                .map(|j| {
                    j.as_u64()
                        .map(JobId)
                        .ok_or_else(|| "preempted id is not an integer".to_owned())
                })
                .collect::<Result<_, _>>()?,
            shrunk: arr_field(v, "shrunk")?
                .iter()
                .map(resize_from_json)
                .collect::<Result<_, _>>()?,
        }),
        "reject" => Ok(DynDecision::Rejected {
            job: JobId(u64_field(v, "job")?),
            reason: reject_from_json(v.req("reason")?)?,
        }),
        "defer" => Ok(DynDecision::Deferred {
            job: JobId(u64_field(v, "job")?),
            reason: reject_from_json(v.req("reason")?)?,
            available_hint: opt_time_field(v, "hint_ms")?,
        }),
        other => Err(format!("unknown dyn decision kind `{other}`")),
    }
}

fn start_to_json(s: &StartDecision) -> Json {
    Json::obj(vec![
        ("job", Json::UInt(s.job.0)),
        ("backfilled", Json::Bool(s.backfilled)),
        (
            "cores",
            s.cores.map(|c| Json::UInt(c as u64)).unwrap_or(Json::Null),
        ),
    ])
}

fn start_from_json(v: &Json) -> Result<StartDecision, String> {
    let cores = match v.get("cores") {
        None | Some(Json::Null) => None,
        Some(c) => Some(
            u32::try_from(c.as_u64().ok_or("`cores` is not an integer")?)
                .map_err(|_| "`cores` exceeds u32".to_owned())?,
        ),
    };
    Ok(StartDecision {
        job: JobId(u64_field(v, "job")?),
        backfilled: bool_field(v, "backfilled")?,
        cores,
    })
}

/// Reduces an [`IterationOutcome`] to the parts [`crate::PbsServer::apply`]
/// actually consumes: starts, dynamic decisions (minus DFS delay charges)
/// and malleable grows. Reservations and the baseline plan are
/// observability-only and re-derived every iteration.
pub fn reduce_outcome(outcome: &IterationOutcome) -> IterationOutcome {
    IterationOutcome {
        starts: outcome.starts.clone(),
        reservations: Vec::new(),
        dyn_decisions: outcome
            .dyn_decisions
            .iter()
            .map(|d| match d {
                DynDecision::Granted {
                    job,
                    extra_cores,
                    preempted,
                    shrunk,
                    ..
                } => DynDecision::Granted {
                    job: *job,
                    extra_cores: *extra_cores,
                    delays: Vec::new(),
                    preempted: preempted.clone(),
                    shrunk: shrunk.clone(),
                },
                other => other.clone(),
            })
            .collect(),
        baseline_plan: Vec::new(),
        grows: outcome.grows.clone(),
    }
}

fn outcome_to_json(outcome: &IterationOutcome) -> Json {
    Json::obj(vec![
        (
            "starts",
            Json::Arr(outcome.starts.iter().map(start_to_json).collect()),
        ),
        (
            "dyn",
            Json::Arr(
                outcome
                    .dyn_decisions
                    .iter()
                    .map(dyn_decision_to_json)
                    .collect(),
            ),
        ),
        (
            "grows",
            Json::Arr(outcome.grows.iter().map(resize_to_json).collect()),
        ),
    ])
}

fn outcome_from_json(v: &Json) -> Result<IterationOutcome, String> {
    Ok(IterationOutcome {
        starts: arr_field(v, "starts")?
            .iter()
            .map(start_from_json)
            .collect::<Result<_, _>>()?,
        reservations: Vec::new(),
        dyn_decisions: arr_field(v, "dyn")?
            .iter()
            .map(dyn_decision_from_json)
            .collect::<Result<_, _>>()?,
        baseline_plan: Vec::new(),
        grows: arr_field(v, "grows")?
            .iter()
            .map(resize_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// Serialises a full server image (snapshot-record payload). Public so the
/// crash-recovery suite can use it as the canonical state digest.
pub fn image_to_json(img: &ServerImage) -> Json {
    Json::obj(vec![
        ("next_job_id", Json::UInt(img.next_job_id)),
        ("next_dyn_seq", Json::UInt(img.next_dyn_seq)),
        ("policy", Json::Str(policy_name(img.alloc_policy).into())),
        ("guarantee", Json::Bool(img.guarantee_evolving)),
        (
            "node_cores",
            Json::Arr(
                img.node_cores
                    .iter()
                    .map(|&c| Json::UInt(c as u64))
                    .collect(),
            ),
        ),
        (
            "down_nodes",
            Json::Arr(
                img.down_nodes
                    .iter()
                    .map(|n| Json::UInt(n.0 as u64))
                    .collect(),
            ),
        ),
        (
            "jobs",
            Json::Arr(
                img.jobs
                    .iter()
                    .map(|(job, alloc)| {
                        Json::obj(vec![
                            ("job", model::job_to_json(job)),
                            (
                                "alloc",
                                alloc.as_ref().map(alloc_to_json).unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "dyn_pending",
            Json::Arr(
                img.dyn_pending
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("job", Json::UInt(p.job.0)),
                            ("extra", Json::UInt(p.extra_cores as u64)),
                            ("seq", Json::UInt(p.seq)),
                            ("deadline_ms", opt_time(p.deadline)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "outcomes",
            Json::Arr(img.outcomes.iter().map(model::outcome_to_json).collect()),
        ),
        (
            "usage",
            Json::Arr(
                img.usage
                    .iter()
                    .map(|&(u, ms)| Json::Arr(vec![Json::UInt(u.0 as u64), Json::UInt(ms)]))
                    .collect(),
            ),
        ),
        (
            "usage_since",
            Json::Arr(
                img.usage_since
                    .iter()
                    .map(|&(j, at)| Json::Arr(vec![Json::UInt(j.0), time(at)]))
                    .collect(),
            ),
        ),
        ("usage_hist", img.usage_hist.to_json()),
    ])
}

/// Parses an image written by [`image_to_json`].
pub fn image_from_json(v: &Json) -> Result<ServerImage, String> {
    let node_id = |j: &Json| -> Result<NodeId, String> {
        let n = j.as_u64().ok_or("node id is not an integer")?;
        Ok(NodeId(
            u32::try_from(n).map_err(|_| "node id exceeds u32".to_owned())?,
        ))
    };
    Ok(ServerImage {
        next_job_id: u64_field(v, "next_job_id")?,
        next_dyn_seq: u64_field(v, "next_dyn_seq")?,
        alloc_policy: policy_from_name(
            v.req("policy")?
                .as_str()
                .ok_or("`policy` is not a string")?,
        )?,
        guarantee_evolving: bool_field(v, "guarantee")?,
        node_cores: arr_field(v, "node_cores")?
            .iter()
            .map(|c| {
                c.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| "node core count is not a u32".to_owned())
            })
            .collect::<Result<_, _>>()?,
        down_nodes: arr_field(v, "down_nodes")?
            .iter()
            .map(node_id)
            .collect::<Result<_, _>>()?,
        jobs: arr_field(v, "jobs")?
            .iter()
            .map(|entry| {
                let job = model::job_from_json(entry.req("job")?)?;
                let alloc = match entry.get("alloc") {
                    None | Some(Json::Null) => None,
                    Some(a) => Some(alloc_from_json(a)?),
                };
                Ok((job, alloc))
            })
            .collect::<Result<_, String>>()?,
        dyn_pending: arr_field(v, "dyn_pending")?
            .iter()
            .map(|p| {
                Ok(PendingDynImage {
                    job: JobId(u64_field(p, "job")?),
                    extra_cores: u32_field(p, "extra")?,
                    seq: u64_field(p, "seq")?,
                    deadline: opt_time_field(p, "deadline_ms")?,
                })
            })
            .collect::<Result<_, String>>()?,
        outcomes: arr_field(v, "outcomes")?
            .iter()
            .map(model::outcome_from_json)
            .collect::<Result<_, _>>()?,
        usage: arr_field(v, "usage")?
            .iter()
            .map(|p| {
                let pair = p.as_arr().ok_or("usage entry is not a pair")?;
                let [user, ms] = pair else {
                    return Err("usage entry is not a pair".to_owned());
                };
                let user = user
                    .as_u64()
                    .and_then(|u| u32::try_from(u).ok())
                    .ok_or("usage user is not a u32")?;
                let ms = ms.as_u64().ok_or("usage core-ms is not an integer")?;
                Ok((UserId(user), ms))
            })
            .collect::<Result<_, String>>()?,
        usage_since: arr_field(v, "usage_since")?
            .iter()
            .map(|p| {
                let pair = p.as_arr().ok_or("usage_since entry is not a pair")?;
                let [j, at] = pair else {
                    return Err("usage_since entry is not a pair".to_owned());
                };
                let j = j.as_u64().ok_or("usage_since job is not an integer")?;
                let at = at.as_u64().ok_or("usage_since time is not an integer")?;
                Ok((JobId(j), SimTime::from_millis(at)))
            })
            .collect::<Result<_, String>>()?,
        usage_hist: UsageHistory::from_json(v.req("usage_hist")?)?,
    })
}

/// Serialises one record as a `rec`-tagged object.
pub fn record_to_json(record: &Record) -> Json {
    let tagged = |tag: &str, mut rest: Vec<(&str, Json)>| {
        let mut pairs = vec![("rec", Json::Str(tag.into()))];
        pairs.append(&mut rest);
        Json::obj(pairs)
    };
    match record {
        Record::Snapshot(img) => tagged("snapshot", vec![("state", image_to_json(img))]),
        Record::Submit { spec, now } => tagged(
            "submit",
            vec![("spec", model::spec_to_json(spec)), ("now", time(*now))],
        ),
        Record::Qdel { job, now } => tagged(
            "qdel",
            vec![("job", Json::UInt(job.0)), ("now", time(*now))],
        ),
        Record::DynGet {
            job,
            extra_cores,
            deadline,
            now,
        } => tagged(
            "dynget",
            vec![
                ("job", Json::UInt(job.0)),
                ("extra", Json::UInt(*extra_cores as u64)),
                ("deadline_ms", opt_time(*deadline)),
                ("now", time(*now)),
            ],
        ),
        Record::DynFree { job, released, now } => tagged(
            "dynfree",
            vec![
                ("job", Json::UInt(job.0)),
                ("released", alloc_to_json(released)),
                ("now", time(*now)),
            ],
        ),
        Record::Finish { job, now } => tagged(
            "finish",
            vec![("job", Json::UInt(job.0)), ("now", time(*now))],
        ),
        Record::Outcome { outcome, now } => tagged(
            "outcome",
            vec![("outcome", outcome_to_json(outcome)), ("now", time(*now))],
        ),
        Record::ExpireOne { job, seq, now } => tagged(
            "expire_one",
            vec![
                ("job", Json::UInt(job.0)),
                ("seq", Json::UInt(*seq)),
                ("now", time(*now)),
            ],
        ),
        Record::ExpireSweep { now } => tagged("expire_sweep", vec![("now", time(*now))]),
        Record::NodeFailed { node, now } => tagged(
            "node_failed",
            vec![("node", Json::UInt(node.0 as u64)), ("now", time(*now))],
        ),
        Record::NodeRepaired { node } => {
            tagged("node_repaired", vec![("node", Json::UInt(node.0 as u64))])
        }
        Record::Guarantee { on } => tagged("guarantee", vec![("on", Json::Bool(*on))]),
    }
}

/// Parses a record written by [`record_to_json`].
pub fn record_from_json(v: &Json) -> Result<Record, String> {
    let job = |v: &Json| -> Result<JobId, String> { Ok(JobId(u64_field(v, "job")?)) };
    let node = |v: &Json| -> Result<NodeId, String> { Ok(NodeId(u32_field(v, "node")?)) };
    match v.req("rec")?.as_str().ok_or("`rec` is not a string")? {
        "snapshot" => Ok(Record::Snapshot(Box::new(image_from_json(
            v.req("state")?,
        )?))),
        "submit" => Ok(Record::Submit {
            spec: model::spec_from_json(v.req("spec")?)?,
            now: time_field(v, "now")?,
        }),
        "qdel" => Ok(Record::Qdel {
            job: job(v)?,
            now: time_field(v, "now")?,
        }),
        "dynget" => Ok(Record::DynGet {
            job: job(v)?,
            extra_cores: u32_field(v, "extra")?,
            deadline: opt_time_field(v, "deadline_ms")?,
            now: time_field(v, "now")?,
        }),
        "dynfree" => Ok(Record::DynFree {
            job: job(v)?,
            released: alloc_from_json(v.req("released")?)?,
            now: time_field(v, "now")?,
        }),
        "finish" => Ok(Record::Finish {
            job: job(v)?,
            now: time_field(v, "now")?,
        }),
        "outcome" => Ok(Record::Outcome {
            outcome: outcome_from_json(v.req("outcome")?)?,
            now: time_field(v, "now")?,
        }),
        "expire_one" => Ok(Record::ExpireOne {
            job: job(v)?,
            seq: u64_field(v, "seq")?,
            now: time_field(v, "now")?,
        }),
        "expire_sweep" => Ok(Record::ExpireSweep {
            now: time_field(v, "now")?,
        }),
        "node_failed" => Ok(Record::NodeFailed {
            node: node(v)?,
            now: time_field(v, "now")?,
        }),
        "node_repaired" => Ok(Record::NodeRepaired { node: node(v)? }),
        "guarantee" => Ok(Record::Guarantee {
            on: bool_field(v, "on")?,
        }),
        other => Err(format!("unknown record tag `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{GroupId, SimDuration, UserId};

    fn alloc(pairs: &[(u32, u32)]) -> Allocation {
        Allocation::from_pairs(pairs.iter().map(|&(n, c)| (NodeId(n), c)))
    }

    fn sample_usage_hist() -> UsageHistory {
        let mut h = UsageHistory::new(SimDuration::from_hours(12), 20);
        h.charge(
            UserId(1),
            dynbatch_core::QueueId(0),
            123_456,
            SimTime::from_secs(5),
        );
        h.charge(
            UserId(2),
            dynbatch_core::QueueId(1),
            7,
            SimTime::from_secs(999),
        );
        h
    }

    fn sample_image() -> ServerImage {
        let spec = JobSpec::rigid("A", UserId(1), GroupId(0), 8, SimDuration::from_secs(100));
        let mut running = Job::new(JobId(1), spec.clone(), SimTime::from_secs(0));
        running.state = dynbatch_core::JobState::Running;
        running.start_time = Some(SimTime::from_secs(5));
        running.cores_allocated = 8;
        ServerImage {
            next_job_id: 3,
            next_dyn_seq: 2,
            alloc_policy: AllocPolicy::Pack,
            guarantee_evolving: true,
            node_cores: vec![8, 8, 4],
            down_nodes: vec![NodeId(2)],
            jobs: vec![
                (running, Some(alloc(&[(0, 8)]))),
                (Job::new(JobId(2), spec, SimTime::from_secs(7)), None),
            ],
            dyn_pending: vec![PendingDynImage {
                job: JobId(1),
                extra_cores: 4,
                seq: 1,
                deadline: Some(SimTime::from_secs(60)),
            }],
            outcomes: vec![],
            usage: vec![(UserId(1), 123_456)],
            usage_since: vec![(JobId(1), SimTime::from_secs(5))],
            usage_hist: sample_usage_hist(),
        }
    }

    #[test]
    fn every_record_kind_round_trips() {
        let spec = JobSpec::rigid("A", UserId(1), GroupId(0), 8, SimDuration::from_secs(100));
        let outcome = IterationOutcome {
            starts: vec![StartDecision {
                job: JobId(3),
                backfilled: true,
                cores: Some(16),
            }],
            reservations: Vec::new(),
            dyn_decisions: vec![
                DynDecision::Granted {
                    job: JobId(1),
                    extra_cores: 4,
                    delays: Vec::new(),
                    preempted: vec![JobId(5)],
                    shrunk: vec![ResizeDecision {
                        job: JobId(6),
                        from_cores: 16,
                        to_cores: 8,
                    }],
                },
                DynDecision::Rejected {
                    job: JobId(2),
                    reason: DfsReject::SingleExceeded {
                        job: JobId(9),
                        would_be: SimDuration::from_secs(100),
                        limit: SimDuration::from_secs(50),
                    },
                },
                DynDecision::Deferred {
                    job: JobId(4),
                    reason: DfsReject::NoResources,
                    available_hint: Some(SimTime::from_secs(700)),
                },
            ],
            baseline_plan: Vec::new(),
            grows: vec![ResizeDecision {
                job: JobId(7),
                from_cores: 8,
                to_cores: 32,
            }],
        };
        let records = vec![
            Record::Snapshot(Box::new(sample_image())),
            Record::Submit {
                spec,
                now: SimTime::from_secs(1),
            },
            Record::Qdel {
                job: JobId(1),
                now: SimTime::from_secs(2),
            },
            Record::DynGet {
                job: JobId(1),
                extra_cores: 4,
                deadline: Some(SimTime::from_secs(90)),
                now: SimTime::from_secs(3),
            },
            Record::DynFree {
                job: JobId(1),
                released: alloc(&[(1, 4)]),
                now: SimTime::from_secs(4),
            },
            Record::Finish {
                job: JobId(1),
                now: SimTime::from_secs(5),
            },
            Record::Outcome {
                outcome,
                now: SimTime::from_secs(6),
            },
            Record::ExpireOne {
                job: JobId(1),
                seq: 3,
                now: SimTime::from_secs(7),
            },
            Record::ExpireSweep {
                now: SimTime::from_secs(8),
            },
            Record::NodeFailed {
                node: NodeId(2),
                now: SimTime::from_secs(9),
            },
            Record::NodeRepaired { node: NodeId(2) },
            Record::Guarantee { on: true },
        ];
        for r in &records {
            let text = record_to_json(r).to_string_compact();
            let back = record_from_json(&dynbatch_core::json::parse(&text).unwrap()).unwrap();
            // IterationOutcome does not derive PartialEq; compare through
            // the serialised form, which is total for journal purposes.
            assert_eq!(
                record_to_json(&back).to_string_compact(),
                text,
                "round-trip changed {text}"
            );
        }
    }

    #[test]
    fn journal_text_round_trip_and_prefix() {
        let mut j = Journal::new();
        j.append(Record::Snapshot(Box::new(sample_image())));
        j.append(Record::Qdel {
            job: JobId(2),
            now: SimTime::from_secs(2),
        });
        j.append(Record::ExpireSweep {
            now: SimTime::from_secs(3),
        });
        assert_eq!(j.len(), 3);
        assert_eq!(j.since_last_snapshot(), 2);

        let parsed = Journal::from_text(&j.to_text()).unwrap();
        assert_eq!(parsed.to_text(), j.to_text());
        assert_eq!(parsed.since_last_snapshot(), 2);

        let p = j.prefix(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.since_last_snapshot(), 0);
    }

    #[test]
    fn compaction_replaces_history() {
        let mut j = Journal::new();
        j.set_snapshot_every(2);
        j.append(Record::Snapshot(Box::new(sample_image())));
        j.append(Record::ExpireSweep {
            now: SimTime::from_secs(1),
        });
        assert!(!j.wants_snapshot());
        j.append(Record::ExpireSweep {
            now: SimTime::from_secs(2),
        });
        assert!(j.wants_snapshot());
        j.compact(sample_image());
        assert_eq!(j.len(), 1);
        assert_eq!(j.since_last_snapshot(), 0);
        assert!(matches!(j.records(), [Record::Snapshot(_)]));
    }

    #[test]
    fn malformed_records_are_rejected() {
        assert!(Journal::from_text("{\"rec\":\"nope\"}\n").is_err());
        assert!(Journal::from_text("{\"rec\":\"qdel\"}\n").is_err());
        assert!(Journal::from_text("not json\n").is_err());
    }
}
