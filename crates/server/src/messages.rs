//! Protocol messages of the (extended) Torque workflow.
//!
//! These enums encode the arrows of the paper's Figs 2–4: client → server
//! (`qsub` etc.), server → mom (run, dyn-join, dyn-disjoin, kill), mom →
//! server (job started/finished, forwarded dynamic requests), and the TM
//! interface between an application process and its local mom. The threaded
//! daemon ships these over channels; the simulator applies them
//! synchronously. Either way the state machines that interpret them are
//! identical.

use dynbatch_cluster::Allocation;
use dynbatch_core::{JobId, JobSpec, NodeId};

/// Client commands (the `qsub` / `qdel` / `qstat` family).
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// Submit a job.
    QSub(Box<JobSpec>),
    /// Delete a job.
    QDel(JobId),
    /// Query a job's state.
    QStat(JobId),
}

/// Server → mom commands.
#[derive(Debug, Clone)]
pub enum ServerToMom {
    /// Start a job; the receiving mom is the *mother superior* and the
    /// allocation is the full hostlist to join.
    RunJob {
        /// The job.
        job: JobId,
        /// Complete hostlist of the allocation.
        alloc: Allocation,
    },
    /// Expand a running job's allocation (*dyn_join*, paper Fig 3 step 6):
    /// sent to the mother superior with the newly added hosts.
    DynJoin {
        /// The job.
        job: JobId,
        /// The newly allocated hosts only.
        added: Allocation,
    },
    /// The server rejected the job's dynamic request; the application's
    /// `tm_dynget()` returns empty-handed and may retry later.
    DynReject {
        /// The job.
        job: JobId,
    },
    /// Contract a job's allocation (*dyn_disjoin*, paper Fig 4): the given
    /// hosts leave the job.
    DynDisjoin {
        /// The job.
        job: JobId,
        /// Hosts to release.
        released: Allocation,
    },
    /// Kill the job (qdel or walltime exceeded).
    KillJob {
        /// The job.
        job: JobId,
    },
}

/// Mom → server notifications.
#[derive(Debug, Clone)]
pub enum MomToServer {
    /// All hosts joined; the application is executing.
    JobStarted {
        /// The job.
        job: JobId,
        /// The reporting mother superior.
        mother_superior: NodeId,
    },
    /// The application exited.
    JobFinished {
        /// The job.
        job: JobId,
    },
    /// A `tm_dynget()` forwarded by the mother superior (paper Fig 3
    /// step 2). At most one may be outstanding per job.
    DynRequest {
        /// The job.
        job: JobId,
        /// Extra cores requested.
        extra_cores: u32,
        /// Negotiation window; `None` = answer immediately.
        timeout: Option<dynbatch_core::SimDuration>,
    },
    /// A `tm_dynfree()` release, after local *dyn_disjoin* completed.
    DynFree {
        /// The job.
        job: JobId,
        /// Hosts released.
        released: Allocation,
    },
}

/// The extended TM (task-management) API an application process calls on
/// its local mom (paper §III-B: "This simple API consisting of two
/// functions is sufficient for dynamic resource (de)allocation").
#[derive(Debug, Clone)]
pub enum TmRequest {
    /// `tm_dynget(nodes, ppn)` — request additional cores. With a
    /// `timeout`, the request is *negotiated*: the server keeps it queued
    /// and retries every iteration until granted or timed out (the
    /// paper's future-work protocol).
    DynGet {
        /// Extra cores wanted.
        extra_cores: u32,
        /// Negotiation window; `None` = answer immediately.
        timeout: Option<dynbatch_core::SimDuration>,
    },
    /// `tm_dynfree(hostlist)` — release part of the allocation.
    DynFree {
        /// Hosts to release.
        released: Allocation,
    },
}

/// The mom's reply to a [`TmRequest`].
#[derive(Debug, Clone)]
pub enum TmResponse {
    /// `tm_dynget` succeeded; here is the dynamically allocated hostlist
    /// (feed it to MPI-2 `MPI_Comm_spawn` via the "add-host" info key).
    DynGranted {
        /// The added hosts.
        added: Allocation,
    },
    /// `tm_dynget` failed; the application continues on its current
    /// allocation (and may request again later — the paper's jobs retry
    /// once at 25 % of SET).
    DynDenied,
    /// `tm_dynfree` completed (a release "rarely fails").
    Freed,
}
