//! The `pbs_mom` state machine.
//!
//! One mom runs per compute node. For the dynamic protocol the interesting
//! mom is the **mother superior** — the first node of a job's allocation:
//! it receives the full hostlist at job start, forwards `tm_dynget()`
//! requests to the server (ensuring at most one is in flight per job), and
//! performs the *dyn_join* / *dyn_disjoin* hostlist updates when the server
//! answers (paper Figs 3–4).
//!
//! The struct is a pure state machine: inputs are protocol messages,
//! outputs are protocol messages. The threaded daemon wires it to channels;
//! tests drive it directly.

use crate::messages::{MomToServer, ServerToMom, TmRequest, TmResponse};
use dynbatch_cluster::Allocation;
use dynbatch_core::{JobId, NodeId};
use std::collections::BTreeMap;

/// A job as tracked by its mother superior.
#[derive(Debug, Clone)]
struct LocalJob {
    /// The job's full current hostlist (only the mother superior tracks
    /// it).
    hostlist: Allocation,
    /// Whether a dynamic request is in flight.
    dyn_in_flight: bool,
}

/// What a mom emits in response to an input.
#[derive(Debug, Clone)]
pub enum MomOutput {
    /// Send to the server.
    ToServer(MomToServer),
    /// Deliver to the application process that called the TM API.
    ToApp(JobId, TmResponse),
}

/// A `pbs_mom` daemon's state.
#[derive(Debug, Clone)]
pub struct Mom {
    node: NodeId,
    jobs: BTreeMap<JobId, LocalJob>,
}

impl Mom {
    /// The mom for `node`.
    pub fn new(node: NodeId) -> Self {
        Mom {
            node,
            jobs: BTreeMap::new(),
        }
    }

    /// This mom's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Jobs for which this mom is mother superior.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The current hostlist of a job this mom mothers.
    pub fn hostlist(&self, job: JobId) -> Option<&Allocation> {
        self.jobs.get(&job).map(|j| &j.hostlist)
    }

    /// Handles a server command.
    pub fn handle_server(&mut self, msg: ServerToMom) -> Vec<MomOutput> {
        match msg {
            ServerToMom::RunJob { job, alloc } => {
                debug_assert!(
                    alloc.cores_on(self.node) > 0,
                    "mother superior must be part of the allocation"
                );
                // A re-sent RunJob (server recovering from a crash, or a
                // mom-restart replay) must not clear an in-flight dynamic
                // request: the application is still parked on its TM reply.
                let dyn_in_flight = self.jobs.get(&job).is_some_and(|j| j.dyn_in_flight);
                self.jobs.insert(
                    job,
                    LocalJob {
                        hostlist: alloc,
                        dyn_in_flight,
                    },
                );
                vec![MomOutput::ToServer(MomToServer::JobStarted {
                    job,
                    mother_superior: self.node,
                })]
            }
            ServerToMom::DynJoin { job, added } => {
                let Some(local) = self.jobs.get_mut(&job) else {
                    return vec![];
                };
                // dyn_join: the existing hosts and the new hosts merge into
                // one allocation. Only an application that actually has a
                // `tm_dynget()` in flight receives the added hostlist — a
                // scheduler-initiated malleable grow (or a grant that raced
                // a mom restart) updates the hostlist silently.
                local.hostlist.merge(&added);
                let was_in_flight = local.dyn_in_flight;
                local.dyn_in_flight = false;
                if was_in_flight {
                    vec![MomOutput::ToApp(job, TmResponse::DynGranted { added })]
                } else {
                    vec![]
                }
            }
            ServerToMom::DynReject { job } => {
                let Some(local) = self.jobs.get_mut(&job) else {
                    return vec![];
                };
                // A stale rejection (e.g. an expiry that raced a grant the
                // app already consumed) must not answer a request that is
                // no longer in flight — it would steal the reply channel of
                // the *next* request.
                let was_in_flight = local.dyn_in_flight;
                local.dyn_in_flight = false;
                if was_in_flight {
                    vec![MomOutput::ToApp(job, TmResponse::DynDenied)]
                } else {
                    vec![]
                }
            }
            ServerToMom::DynDisjoin { job, released } => {
                if let Some(local) = self.jobs.get_mut(&job) {
                    for (node, cores) in released.entries() {
                        local.hostlist.remove(node, cores);
                    }
                }
                vec![]
            }
            ServerToMom::KillJob { job } => {
                // A qdel can land while a negotiated `tm_dynget` is still
                // parked (the job is `DynQueued` at the server). Dropping
                // the job silently would strand that caller forever — the
                // server cancels the expiry timer as part of the delete, so
                // nothing else will ever answer. Deny it on the way out.
                let dyn_in_flight = self.jobs.remove(&job).is_some_and(|j| j.dyn_in_flight);
                if dyn_in_flight {
                    vec![MomOutput::ToApp(job, TmResponse::DynDenied)]
                } else {
                    vec![]
                }
            }
        }
    }

    /// Handles a TM call from an application process of `job`.
    ///
    /// Any process may call the TM API through its local mom, but dynamic
    /// requests are "always forwarded to the server through the mother
    /// superior" so only one can be pending per job (paper §III-B) — a
    /// second concurrent `tm_dynget` is denied locally.
    pub fn handle_tm(&mut self, job: JobId, req: TmRequest) -> Vec<MomOutput> {
        let Some(local) = self.jobs.get_mut(&job) else {
            // Not the mother superior for this job: a real mom would relay
            // to the MS; our drivers always call the MS directly.
            return vec![MomOutput::ToApp(job, TmResponse::DynDenied)];
        };
        match req {
            TmRequest::DynGet {
                extra_cores,
                timeout,
            } => {
                if local.dyn_in_flight {
                    return vec![MomOutput::ToApp(job, TmResponse::DynDenied)];
                }
                local.dyn_in_flight = true;
                vec![MomOutput::ToServer(MomToServer::DynRequest {
                    job,
                    extra_cores,
                    timeout,
                })]
            }
            TmRequest::DynFree { released } => {
                // dyn_disjoin locally, then inform the server (paper Fig 4).
                for (node, cores) in released.entries() {
                    local.hostlist.remove(node, cores);
                }
                vec![
                    MomOutput::ToServer(MomToServer::DynFree { job, released }),
                    MomOutput::ToApp(job, TmResponse::Freed),
                ]
            }
        }
    }

    /// The application under this mom exited.
    pub fn job_exited(&mut self, job: JobId) -> Vec<MomOutput> {
        if self.jobs.remove(&job).is_some() {
            vec![MomOutput::ToServer(MomToServer::JobFinished { job })]
        } else {
            vec![]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(pairs: &[(u32, u32)]) -> Allocation {
        Allocation::from_pairs(pairs.iter().map(|&(n, c)| (NodeId(n), c)))
    }

    #[test]
    fn run_job_reports_started() {
        let mut mom = Mom::new(NodeId(0));
        let out = mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8), (1, 8)]),
        });
        assert!(matches!(
            out[0],
            MomOutput::ToServer(MomToServer::JobStarted {
                job: JobId(1),
                mother_superior: NodeId(0)
            })
        ));
        assert_eq!(mom.hostlist(JobId(1)).unwrap().total_cores(), 16);
    }

    #[test]
    fn dynget_forwards_once() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        let out = mom.handle_tm(
            JobId(1),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: None,
            },
        );
        assert!(matches!(
            out[0],
            MomOutput::ToServer(MomToServer::DynRequest {
                job: JobId(1),
                extra_cores: 4,
                timeout: None
            })
        ));
        // Second concurrent request denied locally.
        let out2 = mom.handle_tm(
            JobId(1),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: None,
            },
        );
        assert!(matches!(
            out2[0],
            MomOutput::ToApp(_, TmResponse::DynDenied)
        ));
    }

    #[test]
    fn dyn_join_merges_and_replies() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        mom.handle_tm(
            JobId(1),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: None,
            },
        );
        let out = mom.handle_server(ServerToMom::DynJoin {
            job: JobId(1),
            added: alloc(&[(2, 4)]),
        });
        match &out[0] {
            MomOutput::ToApp(JobId(1), TmResponse::DynGranted { added }) => {
                assert_eq!(added.total_cores(), 4);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(mom.hostlist(JobId(1)).unwrap().total_cores(), 12);
        // In-flight flag cleared: the app may request again.
        let again = mom.handle_tm(
            JobId(1),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: None,
            },
        );
        assert!(matches!(again[0], MomOutput::ToServer(_)));
    }

    #[test]
    fn dyn_reject_clears_flag() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        mom.handle_tm(
            JobId(1),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: None,
            },
        );
        let out = mom.handle_server(ServerToMom::DynReject { job: JobId(1) });
        assert!(matches!(out[0], MomOutput::ToApp(_, TmResponse::DynDenied)));
        let retry = mom.handle_tm(
            JobId(1),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: None,
            },
        );
        assert!(matches!(retry[0], MomOutput::ToServer(_)));
    }

    #[test]
    fn dynfree_disjoins_and_notifies() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8), (1, 4)]),
        });
        let out = mom.handle_tm(
            JobId(1),
            TmRequest::DynFree {
                released: alloc(&[(1, 4)]),
            },
        );
        assert!(matches!(
            out[0],
            MomOutput::ToServer(MomToServer::DynFree { .. })
        ));
        assert!(matches!(out[1], MomOutput::ToApp(_, TmResponse::Freed)));
        assert_eq!(mom.hostlist(JobId(1)).unwrap().total_cores(), 8);
    }

    #[test]
    fn stale_reject_and_unsolicited_join_stay_silent() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        // No request in flight: a reject produces no app reply.
        assert!(mom
            .handle_server(ServerToMom::DynReject { job: JobId(1) })
            .is_empty());
        // A scheduler-initiated grow merges the hostlist but stays silent.
        let out = mom.handle_server(ServerToMom::DynJoin {
            job: JobId(1),
            added: alloc(&[(3, 4)]),
        });
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(mom.hostlist(JobId(1)).unwrap().total_cores(), 12);
    }

    #[test]
    fn tm_call_for_unknown_job_denied() {
        let mut mom = Mom::new(NodeId(0));
        let out = mom.handle_tm(
            JobId(9),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: None,
            },
        );
        assert!(matches!(out[0], MomOutput::ToApp(_, TmResponse::DynDenied)));
    }

    #[test]
    fn exit_reports_finished() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        let out = mom.job_exited(JobId(1));
        assert!(matches!(
            out[0],
            MomOutput::ToServer(MomToServer::JobFinished { job: JobId(1) })
        ));
        assert_eq!(mom.job_count(), 0);
        assert!(mom.job_exited(JobId(1)).is_empty());
    }

    #[test]
    fn kill_removes_job() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        let out = mom.handle_server(ServerToMom::KillJob { job: JobId(1) });
        assert!(out.is_empty(), "no dynget in flight, nothing to answer");
        assert_eq!(mom.job_count(), 0);
    }

    /// The qdel-during-negotiation leak: killing a job whose application
    /// is parked on a negotiated `tm_dynget` must deny that caller.
    /// Pre-fix, `KillJob` dropped the job silently and the caller hung.
    #[test]
    fn kill_denies_in_flight_dynget() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        mom.handle_tm(
            JobId(1),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: Some(dynbatch_core::SimDuration::from_millis(500)),
            },
        );
        let out = mom.handle_server(ServerToMom::KillJob { job: JobId(1) });
        assert!(
            matches!(out[0], MomOutput::ToApp(JobId(1), TmResponse::DynDenied)),
            "{out:?}"
        );
        assert_eq!(mom.job_count(), 0);
    }

    /// A re-sent `RunJob` (server crash recovery re-attaching the mom)
    /// must not clear the in-flight flag of a parked dynamic request —
    /// the eventual grant still has to reach the application.
    #[test]
    fn rerun_preserves_in_flight_dynget() {
        let mut mom = Mom::new(NodeId(0));
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        mom.handle_tm(
            JobId(1),
            TmRequest::DynGet {
                extra_cores: 4,
                timeout: None,
            },
        );
        // Recovery replays the job's placement.
        mom.handle_server(ServerToMom::RunJob {
            job: JobId(1),
            alloc: alloc(&[(0, 8)]),
        });
        let out = mom.handle_server(ServerToMom::DynJoin {
            job: JobId(1),
            added: alloc(&[(2, 4)]),
        });
        assert!(
            matches!(
                &out[0],
                MomOutput::ToApp(JobId(1), TmResponse::DynGranted { .. })
            ),
            "{out:?}"
        );
    }
}
