//! Job accounting: the completed-job ledger.
//!
//! Fair sharing "is realized through job, user, and resource accounting"
//! (paper §III-D). The server records a [`JobOutcome`] for every completed
//! job; metrics, fairshare charging and the benchmark harness all read from
//! this log.

use dynbatch_core::{JobClass, JobOutcome, OutcomeTotals, SimDuration, UserId};
use std::collections::HashMap;

/// Append-only log of completed jobs.
///
/// Besides the per-job outcome Vec, the log always maintains O(1)-sized
/// derivatives of the record stream: [`OutcomeTotals`] for summaries and a
/// rolling order-sensitive digest for byte-equality checks. Streamed
/// low-memory replays can therefore turn off outcome *retention*
/// ([`AccountingLog::set_retain`]) without losing either aggregates or
/// the ability to compare runs.
#[derive(Debug, Clone)]
pub struct AccountingLog {
    outcomes: Vec<JobOutcome>,
    retain: bool,
    recorded: u64,
    totals: OutcomeTotals,
    digest: u64,
}

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Default for AccountingLog {
    fn default() -> Self {
        AccountingLog {
            outcomes: Vec::new(),
            retain: true,
            recorded: 0,
            totals: OutcomeTotals::default(),
            digest: FNV_OFFSET,
        }
    }
}

impl AccountingLog {
    /// An empty log.
    pub fn new() -> Self {
        AccountingLog::default()
    }

    /// Records a completion.
    pub fn record(&mut self, outcome: JobOutcome) {
        self.recorded += 1;
        self.totals.add(&outcome);
        self.fold_into_digest(&outcome);
        if self.retain {
            self.outcomes.push(outcome);
        }
    }

    /// Empties the ledger, retaining its storage (run-recycling path) and
    /// restoring outcome retention — it is a per-run choice.
    pub fn clear(&mut self) {
        self.outcomes.clear();
        self.retain = true;
        self.recorded = 0;
        self.totals = OutcomeTotals::default();
        self.digest = FNV_OFFSET;
    }

    /// Enables or disables per-job outcome retention. With retention off
    /// the log runs in O(1) memory: [`AccountingLog::totals`] and
    /// [`AccountingLog::digest`] keep working; [`AccountingLog::outcomes`]
    /// (and everything derived from it) sees an empty slice. Disabling
    /// drops outcomes already buffered.
    pub fn set_retain(&mut self, retain: bool) {
        self.retain = retain;
        if !retain {
            self.outcomes.clear();
        }
    }

    /// All outcomes in completion order (empty when retention is off).
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Completions recorded, whether or not they were retained.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Incremental aggregates over every recorded completion.
    pub fn totals(&self) -> &OutcomeTotals {
        &self.totals
    }

    /// Rolling order-sensitive FNV-1a digest over every recorded
    /// completion's fields. O(1) to read, identical across retain modes
    /// by construction — the cheap way to assert two runs recorded the
    /// same outcome stream without keeping either stream.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    fn fold_into_digest(&mut self, o: &JobOutcome) {
        let mut h = self.digest;
        h = fnv_fold(h, &o.id.0.to_le_bytes());
        h = fnv_fold(h, o.name.as_bytes());
        h = fnv_fold(h, &[0xff]); // name terminator
        h = fnv_fold(h, &o.user.0.to_le_bytes());
        let class = match o.class {
            JobClass::Rigid => 0u8,
            JobClass::Evolving => 1,
            JobClass::Malleable => 2,
            JobClass::Moldable => 3,
        };
        h = fnv_fold(h, &[class]);
        h = fnv_fold(h, &o.cores_requested.to_le_bytes());
        h = fnv_fold(h, &o.cores_final.to_le_bytes());
        h = fnv_fold(h, &o.submit_time.as_millis().to_le_bytes());
        h = fnv_fold(h, &o.start_time.as_millis().to_le_bytes());
        h = fnv_fold(h, &o.end_time.as_millis().to_le_bytes());
        h = fnv_fold(h, &o.dyn_requests.to_le_bytes());
        h = fnv_fold(h, &o.dyn_grants.to_le_bytes());
        h = fnv_fold(h, &[o.backfilled as u8]);
        self.digest = h;
    }

    /// Core-seconds consumed per user (for fairshare-style reporting).
    /// Uses the *final* core count for the whole runtime, which slightly
    /// over-charges jobs that grew mid-run; the simulator charges exact
    /// usage separately.
    pub fn core_seconds_by_user(&self) -> HashMap<UserId, f64> {
        let mut map = HashMap::new();
        for o in &self.outcomes {
            *map.entry(o.user).or_insert(0.0) += o.cores_final as f64 * o.runtime().as_secs_f64();
        }
        map
    }

    /// Mean waiting time over all recorded jobs (totals-based, exact in
    /// both retain modes).
    pub fn mean_wait(&self) -> SimDuration {
        if self.totals.jobs == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_millis(self.totals.sum_wait_ms / self.totals.jobs)
    }

    /// Number of evolving jobs whose dynamic request was satisfied
    /// (the paper's "Satisfied Dyn Jobs" column in Table II).
    pub fn satisfied_dyn_jobs(&self) -> usize {
        self.totals.satisfied_dyn as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{JobClass, JobId, SimTime};

    fn outcome(
        id: u64,
        user: u32,
        cores: u32,
        submit: u64,
        start: u64,
        end: u64,
        grants: u32,
    ) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            name: "T".into(),
            user: UserId(user),
            class: JobClass::Rigid,
            cores_requested: cores,
            cores_final: cores,
            submit_time: SimTime::from_secs(submit),
            start_time: SimTime::from_secs(start),
            end_time: SimTime::from_secs(end),
            dyn_requests: grants,
            dyn_grants: grants,
            backfilled: false,
        }
    }

    #[test]
    fn empty_log() {
        let log = AccountingLog::new();
        assert_eq!(log.mean_wait(), SimDuration::ZERO);
        assert_eq!(log.satisfied_dyn_jobs(), 0);
        assert!(log.outcomes().is_empty());
    }

    #[test]
    fn aggregates() {
        let mut log = AccountingLog::new();
        log.record(outcome(1, 0, 4, 0, 10, 110, 0)); // wait 10, 400 cs
        log.record(outcome(2, 0, 2, 0, 30, 80, 1)); // wait 30, 100 cs
        assert_eq!(log.mean_wait(), SimDuration::from_secs(20));
        assert_eq!(log.satisfied_dyn_jobs(), 1);
        let cs = log.core_seconds_by_user();
        assert!((cs[&UserId(0)] - 500.0).abs() < 1e-9);
    }

    /// The O(1) derivatives (digest, totals, recorded count, mean wait)
    /// must not depend on whether outcomes are retained.
    #[test]
    fn prop_digest_and_totals_are_retain_mode_independent() {
        dynbatch_core::testkit::check(100, 0xD16E, |rng| {
            let mut keep = AccountingLog::new();
            let mut drop = AccountingLog::new();
            drop.set_retain(false);
            let n = rng.range_usize(0, 30);
            for i in 0..n {
                let o = outcome(
                    i as u64,
                    rng.range_u32(0, 4),
                    rng.range_u32(1, 64),
                    rng.range(0, 50),
                    rng.range(50, 100),
                    rng.range(100, 500),
                    rng.range_u32(0, 3),
                );
                keep.record(o.clone());
                drop.record(o);
            }
            assert_eq!(keep.digest(), drop.digest());
            assert_eq!(keep.totals(), drop.totals());
            assert_eq!(keep.recorded(), drop.recorded());
            assert_eq!(keep.mean_wait(), drop.mean_wait());
            assert_eq!(keep.satisfied_dyn_jobs(), drop.satisfied_dyn_jobs());
            assert_eq!(keep.outcomes().len(), n);
            assert!(drop.outcomes().is_empty());
            // Order sensitivity: swapping two records changes the digest.
            if n >= 2 {
                let mut swapped = AccountingLog::new();
                let mut v = keep.outcomes().to_vec();
                v.swap(0, 1);
                for o in v {
                    swapped.record(o);
                }
                assert_ne!(swapped.digest(), keep.digest());
            }
            // clear() restores retention and resets the derivatives.
            drop.clear();
            assert_eq!(drop.digest(), AccountingLog::new().digest());
            drop.record(outcome(99, 0, 1, 0, 1, 2, 0));
            assert_eq!(drop.outcomes().len(), 1);
        });
    }

    /// Property: the log is strictly append-only. Whatever interleaving of
    /// records and reads happens, every previously observed prefix is a
    /// verbatim prefix of every later observation — nothing is reordered,
    /// rewritten or dropped. (Crash recovery leans on this: replaying a
    /// journal prefix must reproduce exactly the accounting records
    /// emitted up to that point, which is only well-defined because the
    /// live log never mutates its past.)
    #[test]
    fn prop_log_is_append_only() {
        dynbatch_core::testkit::check(200, 0xACC0, |rng| {
            let mut log = AccountingLog::new();
            let mut observed: Vec<Vec<JobOutcome>> = vec![log.outcomes().to_vec()];
            let steps = rng.range_usize(1, 40);
            for i in 0..steps {
                let batch = rng.range_usize(1, 4);
                for b in 0..batch {
                    log.record(outcome(
                        (i * 8 + b) as u64,
                        rng.range_u32(0, 4),
                        rng.range_u32(1, 64),
                        rng.range(0, 50),
                        rng.range(50, 100),
                        rng.range(100, 500),
                        rng.range_u32(0, 3),
                    ));
                }
                observed.push(log.outcomes().to_vec());
            }
            for pair in observed.windows(2) {
                let (earlier, later) = (&pair[0], &pair[1]);
                assert!(earlier.len() <= later.len());
                for (a, b) in earlier.iter().zip(later.iter()) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.user, b.user);
                    assert_eq!(a.end_time, b.end_time);
                    assert_eq!(a.cores_final, b.cores_final);
                }
            }
            // Aggregates are pure functions of the full log: reading them
            // repeatedly neither mutates nor reorders it.
            let before = log.outcomes().to_vec();
            let _ = log.mean_wait();
            let _ = log.core_seconds_by_user();
            let _ = log.satisfied_dyn_jobs();
            assert_eq!(before.len(), log.outcomes().len());
        });
    }
}
