//! Job accounting: the completed-job ledger.
//!
//! Fair sharing "is realized through job, user, and resource accounting"
//! (paper §III-D). The server records a [`JobOutcome`] for every completed
//! job; metrics, fairshare charging and the benchmark harness all read from
//! this log.

use dynbatch_core::{JobOutcome, SimDuration, UserId};
use std::collections::HashMap;

/// Append-only log of completed jobs.
#[derive(Debug, Clone, Default)]
pub struct AccountingLog {
    outcomes: Vec<JobOutcome>,
}

impl AccountingLog {
    /// An empty log.
    pub fn new() -> Self {
        AccountingLog::default()
    }

    /// Records a completion.
    pub fn record(&mut self, outcome: JobOutcome) {
        self.outcomes.push(outcome);
    }

    /// Empties the ledger, retaining its storage (run-recycling path).
    pub fn clear(&mut self) {
        self.outcomes.clear();
    }

    /// All outcomes in completion order.
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Core-seconds consumed per user (for fairshare-style reporting).
    /// Uses the *final* core count for the whole runtime, which slightly
    /// over-charges jobs that grew mid-run; the simulator charges exact
    /// usage separately.
    pub fn core_seconds_by_user(&self) -> HashMap<UserId, f64> {
        let mut map = HashMap::new();
        for o in &self.outcomes {
            *map.entry(o.user).or_insert(0.0) += o.cores_final as f64 * o.runtime().as_secs_f64();
        }
        map
    }

    /// Mean waiting time over all completed jobs.
    pub fn mean_wait(&self) -> SimDuration {
        if self.outcomes.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.outcomes.iter().map(|o| o.wait().as_millis()).sum();
        SimDuration::from_millis(total / self.outcomes.len() as u64)
    }

    /// Number of evolving jobs whose dynamic request was satisfied
    /// (the paper's "Satisfied Dyn Jobs" column in Table II).
    pub fn satisfied_dyn_jobs(&self) -> usize {
        self.outcomes.iter().filter(|o| o.dyn_satisfied()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{JobClass, JobId, SimTime};

    fn outcome(
        id: u64,
        user: u32,
        cores: u32,
        submit: u64,
        start: u64,
        end: u64,
        grants: u32,
    ) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            name: "T".into(),
            user: UserId(user),
            class: JobClass::Rigid,
            cores_requested: cores,
            cores_final: cores,
            submit_time: SimTime::from_secs(submit),
            start_time: SimTime::from_secs(start),
            end_time: SimTime::from_secs(end),
            dyn_requests: grants,
            dyn_grants: grants,
            backfilled: false,
        }
    }

    #[test]
    fn empty_log() {
        let log = AccountingLog::new();
        assert_eq!(log.mean_wait(), SimDuration::ZERO);
        assert_eq!(log.satisfied_dyn_jobs(), 0);
        assert!(log.outcomes().is_empty());
    }

    #[test]
    fn aggregates() {
        let mut log = AccountingLog::new();
        log.record(outcome(1, 0, 4, 0, 10, 110, 0)); // wait 10, 400 cs
        log.record(outcome(2, 0, 2, 0, 30, 80, 1)); // wait 30, 100 cs
        assert_eq!(log.mean_wait(), SimDuration::from_secs(20));
        assert_eq!(log.satisfied_dyn_jobs(), 1);
        let cs = log.core_seconds_by_user();
        assert!((cs[&UserId(0)] - 500.0).abs() < 1e-9);
    }

    /// Property: the log is strictly append-only. Whatever interleaving of
    /// records and reads happens, every previously observed prefix is a
    /// verbatim prefix of every later observation — nothing is reordered,
    /// rewritten or dropped. (Crash recovery leans on this: replaying a
    /// journal prefix must reproduce exactly the accounting records
    /// emitted up to that point, which is only well-defined because the
    /// live log never mutates its past.)
    #[test]
    fn prop_log_is_append_only() {
        dynbatch_core::testkit::check(200, 0xACC0, |rng| {
            let mut log = AccountingLog::new();
            let mut observed: Vec<Vec<JobOutcome>> = vec![log.outcomes().to_vec()];
            let steps = rng.range_usize(1, 40);
            for i in 0..steps {
                let batch = rng.range_usize(1, 4);
                for b in 0..batch {
                    log.record(outcome(
                        (i * 8 + b) as u64,
                        rng.range_u32(0, 4),
                        rng.range_u32(1, 64),
                        rng.range(0, 50),
                        rng.range(50, 100),
                        rng.range(100, 500),
                        rng.range_u32(0, 3),
                    ));
                }
                observed.push(log.outcomes().to_vec());
            }
            for pair in observed.windows(2) {
                let (earlier, later) = (&pair[0], &pair[1]);
                assert!(earlier.len() <= later.len());
                for (a, b) in earlier.iter().zip(later.iter()) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.user, b.user);
                    assert_eq!(a.end_time, b.end_time);
                    assert_eq!(a.cores_final, b.cores_final);
                }
            }
            // Aggregates are pure functions of the full log: reading them
            // repeatedly neither mutates nor reorders it.
            let before = log.outcomes().to_vec();
            let _ = log.mean_wait();
            let _ = log.core_seconds_by_user();
            let _ = log.satisfied_dyn_jobs();
            assert_eq!(before.len(), log.outcomes().len());
        });
    }
}
