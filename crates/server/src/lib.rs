//! # dynbatch-server
//!
//! The Torque-like resource manager, extended for dynamic allocation.
//!
//! Three layers:
//!
//! * [`messages`] — the protocol vocabulary of the paper's Figs 2–4
//!   (client ↔ server ↔ mom, plus the extended TM API with
//!   `tm_dynget()` / `tm_dynfree()`);
//! * [`server`] — the `pbs_server` state machine: job lifecycle, the
//!   `DynQueued` state, snapshot production for the scheduler and outcome
//!   application back onto the cluster;
//! * [`mom`] — the per-node `pbs_mom` state machine: mother-superior
//!   hostlist tracking, `dyn_join` / `dyn_disjoin`;
//! * [`journal`] — the write-ahead state journal (the `server_priv/`
//!   analogue): append-only mutation records plus compacting snapshots,
//!   consumed by [`server::PbsServer::recover`] for crash recovery;
//! * [`reactor`] — the multi-tenant command front-end: ticket-ordered
//!   admission of concurrent client commands with group-commit acks
//!   released only once the batch's journal records are appended.
//!
//! Everything is a pure state machine over message values so that the
//! discrete-event simulator (`dynbatch-sim`) and the threaded daemon
//! (`dynbatch-daemon`) execute the identical protocol code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod journal;
pub mod messages;
pub mod mom;
pub mod reactor;
pub mod replication;
pub mod server;

pub use accounting::AccountingLog;
pub use journal::{Journal, PendingDynImage, Record, ServerImage};
pub use messages::{ClientMsg, MomToServer, ServerToMom, TmRequest, TmResponse};
pub use mom::{Mom, MomOutput};
pub use reactor::{
    BatchEvent, Command, Reactor, ReactorClient, ReactorConnector, ReactorStats, Reply,
};
pub use replication::{
    FailoverReport, Follower, FollowerHandle, FollowerRead, FollowerReader, HubConfig, HubStats,
    PumpReport, ReadRouter, ReplFaultPlan, ReplicationHub,
};
pub use server::{Applied, PbsServer};
