//! The `pbs_server` state machine, extended for dynamic allocation.
//!
//! The server owns the cluster and the job table. It:
//!
//! * queues submissions (`qsub`) and deletions (`qdel`);
//! * accepts forwarded `tm_dynget()` requests, moving the job into the
//!   special `DynQueued` state (paper Fig 3, step 3) — at most one pending
//!   dynamic request per job;
//! * accepts `tm_dynfree()` releases immediately (paper: "a release
//!   operation is rarely unsuccessful");
//! * builds the [`Snapshot`] each scheduler iteration starts from;
//! * applies an [`IterationOutcome`] to real cluster state, reporting the
//!   concrete effects ([`Applied`]) so the driver (simulator or daemon)
//!   can deliver hostlists and schedule completions.

use crate::accounting::AccountingLog;
use crate::journal::{self, Journal, PendingDynImage, Record, ServerImage};
use dynbatch_cluster::{Allocation, Cluster};
use dynbatch_core::{
    AllocPolicy, Error, Job, JobId, JobOutcome, JobSpec, JobState, Result, SimDuration, SimTime,
    UserId,
};
use dynbatch_sched::{
    DeltaLog, DfsReject, DynDecision, DynRequest, IterationOutcome, ProfileDelta, QueuedJob,
    RunningJob, Snapshot, UsageHistory,
};
use std::collections::BTreeMap;

/// A pending dynamic request held at the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingDyn {
    extra_cores: u32,
    seq: u64,
    /// Negotiation deadline; `None` = reject-immediately protocol.
    deadline: Option<SimTime>,
}

/// A concrete effect of applying a scheduling outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// A queued job started on `alloc`.
    Started {
        /// The job.
        job: JobId,
        /// Its allocation (the hostlist sent to the mother superior).
        alloc: Allocation,
        /// Whether it was started by backfill.
        backfilled: bool,
    },
    /// A dynamic request was granted; `added` is the new hostlist returned
    /// through `tm_dynget()`.
    DynGranted {
        /// The evolving job.
        job: JobId,
        /// The added hosts.
        added: Allocation,
    },
    /// A dynamic request was rejected.
    DynRejected {
        /// The evolving job.
        job: JobId,
        /// Why.
        reason: DfsReject,
    },
    /// A negotiated dynamic request was deferred: it stays queued at the
    /// server, and the scheduler's availability estimate is relayed.
    DynDeferred {
        /// The evolving job.
        job: JobId,
        /// The scheduler's earliest-availability hint.
        available_hint: Option<SimTime>,
    },
    /// A backfilled job was preempted (requeued) to serve a dynamic
    /// request.
    Preempted {
        /// The victim.
        job: JobId,
    },
    /// A running malleable job was resized by the batch system (shrunk to
    /// serve a dynamic request, or grown onto idle cores).
    Resized {
        /// The malleable job.
        job: JobId,
        /// Cores before.
        from_cores: u32,
        /// Cores after.
        to_cores: u32,
        /// The hosts added (grow) or removed (shrink).
        changed: Allocation,
    },
}

/// The extended Torque server.
#[derive(Debug, Clone)]
pub struct PbsServer {
    cluster: Cluster,
    jobs: BTreeMap<JobId, Job>,
    dyn_pending: BTreeMap<JobId, PendingDyn>,
    next_job_id: u64,
    next_dyn_seq: u64,
    alloc_policy: AllocPolicy,
    accounting: AccountingLog,
    guarantee_evolving: bool,
    /// Running-set mutations since the last incremental snapshot, in
    /// occurrence order — the feed for the scheduler's incremental
    /// timeline (`dynbatch_sched::incremental`). Drained by
    /// [`PbsServer::snapshot_incremental`].
    deltas: Vec<ProfileDelta>,
    /// Continuity epoch: incremented per incremental snapshot, stamped
    /// into each drained [`DeltaLog`].
    snapshot_epoch: u64,
    /// The write-ahead journal, when durability is enabled
    /// ([`PbsServer::enable_journal`]). Every successful state mutation
    /// appends a record *after* taking effect, so the log tail is always
    /// consistent with in-memory state; crash points sit between records.
    journal: Option<Journal>,
    /// Per-user historical usage in core-milliseconds, accumulated in
    /// constant-width segments: whenever a job's width changes or it
    /// leaves the machine, the segment ending now is charged at its
    /// actual width. Durable — snapshotted in [`ServerImage`] and
    /// reconstructed exactly by replay — so recovered fairshare
    /// priorities match a crash-free run byte-for-byte (the daemon used
    /// to keep this ledger in memory only and forfeit it on crash).
    usage: BTreeMap<UserId, u64>,
    /// Open-segment cursor per active job: when its current
    /// constant-width segment started. The width is read from the job at
    /// charge time (segments close *before* any width mutation), so only
    /// the start instant needs recording.
    usage_since: BTreeMap<JobId, SimTime>,
    /// Decayed per-user/per-queue resource-hour accounts (time-aware
    /// fairness), charged in lock-step with the `usage` ledger at exact
    /// segment-close instants. Always maintained (the charge is O(1));
    /// snapshotted bit-exactly in [`ServerImage`] so recovery is O(1) and
    /// byte-identical, like the raw ledger.
    usage_hist: UsageHistory,
    /// Exact `(user, core_ms, close_instant)` tuples of segments closed
    /// since the last drain — the daemon's window-boundary-correct
    /// fairshare sync feed. Volatile by design (the journal already
    /// carries everything needed to rebuild totals); only collected when
    /// [`PbsServer::set_collect_usage_events`] is on, since nothing
    /// bounds the buffer in a simulator run.
    usage_events: Vec<(UserId, u64, SimTime)>,
    collect_usage_events: bool,
    /// Attach a decayed-usage snapshot to every incremental scheduler
    /// snapshot (time-aware fairshare mode). Off by default: static-mode
    /// runs stay byte-identical to builds without the feature.
    publish_usage: bool,
    /// Keep terminal (completed/cancelled) jobs in the job table for
    /// inspection (`true`, the default) or drop them as they terminate
    /// (`false` — bounded-memory replay of month-scale traces; their
    /// outcomes live on in the accounting ledger's totals and digest,
    /// and the usage ledger is charged before the drop).
    retain_terminal_jobs: bool,
}

impl PbsServer {
    /// A server managing `cluster`, placing cores with `alloc_policy`.
    pub fn new(cluster: Cluster, alloc_policy: AllocPolicy) -> Self {
        let capacity = cluster.total_cores() as u64;
        PbsServer {
            cluster,
            jobs: BTreeMap::new(),
            dyn_pending: BTreeMap::new(),
            next_job_id: 1,
            next_dyn_seq: 0,
            alloc_policy,
            accounting: AccountingLog::new(),
            guarantee_evolving: false,
            deltas: Vec::new(),
            snapshot_epoch: 0,
            journal: None,
            usage: BTreeMap::new(),
            usage_since: BTreeMap::new(),
            usage_hist: UsageHistory::new(SimDuration::from_hours(24), capacity),
            usage_events: Vec::new(),
            collect_usage_events: false,
            publish_usage: false,
            retain_terminal_jobs: true,
        }
    }

    /// Rewinds the server to the just-constructed state over a fresh
    /// `cluster`, **retaining** the accounting ledger's storage. Sweep
    /// workers recycle one server across hundreds of runs this way
    /// instead of reallocating per run; the result is indistinguishable
    /// from [`PbsServer::new`].
    pub fn reset(&mut self, cluster: Cluster, alloc_policy: AllocPolicy) {
        self.cluster = cluster;
        self.jobs.clear();
        self.dyn_pending.clear();
        self.next_job_id = 1;
        self.next_dyn_seq = 0;
        self.alloc_policy = alloc_policy;
        self.accounting.clear();
        self.guarantee_evolving = false;
        self.deltas.clear();
        self.snapshot_epoch = 0;
        self.journal = None;
        self.usage.clear();
        self.usage_since.clear();
        self.usage_hist = UsageHistory::new(
            self.usage_hist.half_life(),
            self.cluster.total_cores() as u64,
        );
        self.usage_events.clear();
        self.collect_usage_events = false;
        self.publish_usage = false;
        self.retain_terminal_jobs = true;
    }

    /// Enables the *guaranteeing* site policy (paper §II-B): evolving jobs
    /// pre-reserve their maximum dynamic demand at start and every dynamic
    /// request is served from that reserve.
    pub fn set_guarantee_evolving(&mut self, on: bool) {
        self.guarantee_evolving = on;
        if self.journal.is_some() {
            self.log(Record::Guarantee { on });
        }
    }

    /// Turns on write-ahead journaling: a genesis snapshot is written, and
    /// every subsequent mutation appends a record. `snapshot_every` sets
    /// the compaction interval — once that many records accumulate after
    /// the last snapshot, the history is replaced by a fresh compacting
    /// snapshot (`0` disables compaction; crash-sweep tests rely on stable
    /// record indices).
    pub fn enable_journal(&mut self, snapshot_every: usize) {
        let mut j = Journal::new();
        j.set_snapshot_every(snapshot_every);
        j.append(Record::Snapshot(Box::new(self.image())));
        self.journal = Some(j);
    }

    /// The journal, when enabled.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Raises the journal's compaction retain floor (no-op without a
    /// journal) — replication drivers call this with their replicated
    /// watermark + 1 so compaction never discards records a follower
    /// still needs to stream.
    pub fn journal_retain_from(&mut self, pos: u64) {
        if let Some(j) = self.journal.as_mut() {
            j.set_retain_floor(pos);
        }
    }

    /// Detaches the journal (e.g. to recover from it after a simulated
    /// crash); journaling is off afterwards.
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.journal.take()
    }

    /// Appends a record and compacts when the interval is reached. Only
    /// called after the corresponding mutation succeeded, so a compacting
    /// snapshot always captures a state consistent with the log tail.
    fn log(&mut self, record: Record) {
        let journal = self.journal.as_mut().expect("journal enabled");
        journal.append(record);
        if journal.wants_snapshot() {
            let image = self.image();
            self.journal
                .as_mut()
                .expect("journal enabled")
                .compact(image);
        }
    }

    /// Captures the full durable state — the payload of snapshot records,
    /// and (serialised) the canonical digest the crash-recovery suite
    /// compares byte-for-byte. Scheduler-coupling soft state (the
    /// `ProfileDelta` buffer and snapshot epoch) is excluded: recovery
    /// breaks timeline continuity and the scheduler rebuilds on the first
    /// epoch gap.
    pub fn image(&self) -> ServerImage {
        ServerImage {
            next_job_id: self.next_job_id,
            next_dyn_seq: self.next_dyn_seq,
            alloc_policy: self.alloc_policy,
            guarantee_evolving: self.guarantee_evolving,
            node_cores: self.cluster.nodes().map(|n| n.cores_total()).collect(),
            down_nodes: self
                .cluster
                .nodes()
                .filter(|n| !n.is_up())
                .map(|n| n.id())
                .collect(),
            jobs: self
                .jobs
                .values()
                .map(|job| (job.clone(), self.cluster.allocation_of(job.id).cloned()))
                .collect(),
            dyn_pending: self.pending_dyn_requests().collect(),
            outcomes: self.accounting.outcomes().to_vec(),
            usage: self.usage.iter().map(|(&u, &ms)| (u, ms)).collect(),
            usage_since: self.usage_since.iter().map(|(&j, &at)| (j, at)).collect(),
            usage_hist: self.usage_hist.clone(),
        }
    }

    /// The serialised [`PbsServer::image`]: a deterministic, byte-comparable
    /// digest of the durable state.
    pub fn state_digest(&self) -> String {
        journal::image_to_json(&self.image()).to_string_compact()
    }

    /// Rebuilds a server from a snapshot image — the public face of the
    /// recovery loader, used by replication followers installing a
    /// catch-up snapshot. Journaling is off on the rebuilt server.
    pub fn from_image(img: &ServerImage) -> Result<PbsServer> {
        Self::restore(img)
    }

    /// Rebuilds a server from a snapshot image: cluster shape, node
    /// up/down state, exact per-job allocations, job table, pending
    /// negotiations and the accounting log.
    fn restore(img: &ServerImage) -> Result<PbsServer> {
        let mut cluster = Cluster::from_core_counts(&img.node_cores);
        for &n in &img.down_nodes {
            cluster.fail_node(n)?;
        }
        for (job, alloc) in &img.jobs {
            if let Some(alloc) = alloc {
                cluster.adopt(job.id, alloc)?;
            }
        }
        let mut accounting = AccountingLog::new();
        for o in &img.outcomes {
            accounting.record(o.clone());
        }
        Ok(PbsServer {
            cluster,
            jobs: img.jobs.iter().map(|(j, _)| (j.id, j.clone())).collect(),
            dyn_pending: img
                .dyn_pending
                .iter()
                .map(|p| {
                    (
                        p.job,
                        PendingDyn {
                            extra_cores: p.extra_cores,
                            seq: p.seq,
                            deadline: p.deadline,
                        },
                    )
                })
                .collect(),
            next_job_id: img.next_job_id,
            next_dyn_seq: img.next_dyn_seq,
            alloc_policy: img.alloc_policy,
            accounting,
            guarantee_evolving: img.guarantee_evolving,
            deltas: Vec::new(),
            snapshot_epoch: 0,
            journal: None,
            usage: img.usage.iter().copied().collect(),
            usage_since: img.usage_since.iter().copied().collect(),
            usage_hist: img.usage_hist.clone(),
            usage_events: Vec::new(),
            collect_usage_events: false,
            publish_usage: false,
            retain_terminal_jobs: true,
        })
    }

    /// Crash recovery: rebuilds the server a journal describes by loading
    /// its latest snapshot record and replaying every record after it
    /// through the ordinary (deterministic) mutation paths. The journal is
    /// then re-installed, so the recovered server keeps journaling where
    /// the crashed one stopped.
    ///
    /// Invariant (pinned by the crash-at-every-record sweep): recovered
    /// state ≡ crash-free state, byte-for-byte.
    pub fn recover(journal: Journal) -> Result<PbsServer> {
        let mut server = {
            let records = journal.records();
            let last_snap = records
                .iter()
                .rposition(|r| matches!(r, Record::Snapshot(_)))
                .ok_or_else(|| Error::BadConfig("journal has no snapshot record".into()))?;
            let Record::Snapshot(img) = &records[last_snap] else {
                unreachable!("rposition matched a snapshot");
            };
            let mut server = Self::restore(img)?;
            for record in &records[last_snap + 1..] {
                server.replay(record)?;
            }
            server
        };
        server.journal = Some(journal);
        Ok(server)
    }

    /// Applies one journalled mutation through the ordinary deterministic
    /// paths — the replication follower's apply step. Requires journaling
    /// off (a follower never re-appends what it mirrors); snapshot records
    /// are handled by the follower itself (install or boundary-verify),
    /// never through this path.
    pub fn apply_record(&mut self, record: &Record) -> Result<()> {
        if self.journal.is_some() {
            return Err(Error::BadConfig(
                "apply_record requires journaling off (followers never re-append)".into(),
            ));
        }
        self.replay(record)
    }

    /// Replays one journalled mutation. Journaling is off while recovering
    /// (`self.journal` is `None`), so replay never re-appends.
    fn replay(&mut self, record: &Record) -> Result<()> {
        debug_assert!(self.journal.is_none(), "journaling must be off in replay");
        match record {
            Record::Snapshot(_) => {
                return Err(Error::BadConfig(
                    "snapshot record after the recovery point".into(),
                ))
            }
            Record::Submit { spec, now } => {
                self.qsub(spec.clone(), *now)?;
            }
            Record::Qdel { job, now } => self.qdel(*job, *now)?,
            Record::DynGet {
                job,
                extra_cores,
                deadline,
                now,
            } => self.tm_dynget_negotiated(*job, *extra_cores, *deadline, *now)?,
            Record::DynFree { job, released, now } => self.tm_dynfree(*job, released, *now)?,
            Record::Finish { job, now } => {
                self.job_finished(*job, *now)?;
            }
            Record::Outcome { outcome, now } => {
                self.apply(outcome, *now);
            }
            Record::ExpireOne { job, seq, now } => {
                self.expire_dyn_request(*job, *seq, *now);
            }
            Record::ExpireSweep { now } => {
                self.expire_dyn_requests(*now);
            }
            Record::NodeFailed { node, now } => {
                self.node_failed(*node, *now)?;
            }
            Record::NodeRepaired { node } => self.node_repaired(*node)?,
            Record::Guarantee { on } => self.guarantee_evolving = *on,
        }
        Ok(())
    }

    /// Every pending dynamic request, in job-id order — the daemon re-arms
    /// negotiation-expiry timers from this after recovery.
    pub fn pending_dyn_requests(&self) -> impl Iterator<Item = PendingDynImage> + '_ {
        self.dyn_pending.iter().map(|(&job, p)| PendingDynImage {
            job,
            extra_cores: p.extra_cores,
            seq: p.seq,
            deadline: p.deadline,
        })
    }

    /// Cores currently pre-reserved (held but idle) under the
    /// guaranteeing policy.
    pub fn reserved_unused_cores(&self) -> u32 {
        self.jobs
            .values()
            .filter(|j| j.state.is_active())
            .map(|j| j.reserved_extra)
            .sum()
    }

    /// The managed cluster (read-only).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The accounting log of completed jobs.
    pub fn accounting(&self) -> &AccountingLog {
        &self.accounting
    }

    /// Enables or disables per-job outcome retention in the accounting
    /// log (see [`AccountingLog::set_retain`]). `reset` restores the
    /// default (retained) — low-memory is a per-run choice. Note that
    /// [`PbsServer::image`] embeds the retained outcome log, so snapshots
    /// and state digests taken with retention off only cover live state
    /// plus the O(1) accounting derivatives.
    pub fn set_accounting_retention(&mut self, retain: bool) {
        self.accounting.set_retain(retain);
    }

    /// Whether terminal jobs stay in the job table (default: yes). With
    /// retention off, a job is dropped the moment it completes or is
    /// cancelled — after its outcome is recorded and its usage segment
    /// charged — so the table holds only live jobs and month-scale
    /// replays run in bounded memory. Turning retention off also sweeps
    /// jobs that are already terminal. Restored by [`PbsServer::reset`].
    pub fn set_job_retention(&mut self, retain: bool) {
        self.retain_terminal_jobs = retain;
        if !retain {
            self.jobs.retain(|_, j| !j.state.is_terminal());
        }
    }

    /// Per-user historical usage in core-milliseconds (closed segments
    /// only), in user-id order — the durable feed the daemon recharges
    /// its fairshare tracker from, including after crash recovery.
    pub fn usage(&self) -> impl Iterator<Item = (UserId, u64)> + '_ {
        self.usage.iter().map(|(&u, &ms)| (u, ms))
    }

    /// Total core-milliseconds charged to `user` so far (excluding the
    /// still-open segment of any active job).
    pub fn usage_core_millis(&self, user: UserId) -> u64 {
        self.usage.get(&user).copied().unwrap_or(0)
    }

    /// The decayed per-user/per-queue resource-hour accounts (time-aware
    /// fairness), charged in lock-step with [`PbsServer::usage`].
    pub fn usage_history(&self) -> &UsageHistory {
        &self.usage_hist
    }

    /// Sets the decay half-life of the time-aware usage accounts. Call
    /// before [`PbsServer::enable_journal`] and before any job runs —
    /// changing the half-life mid-history would silently reinterpret
    /// already-decayed charges, so this only takes effect while the
    /// accounts are empty.
    pub fn set_usage_half_life(&mut self, half_life: SimDuration) {
        if self.usage_hist.is_empty() {
            self.usage_hist.set_half_life(half_life);
        }
    }

    /// Attach a decayed-usage snapshot to every
    /// [`PbsServer::snapshot_incremental`] (time-aware fairshare mode).
    pub fn set_publish_usage(&mut self, on: bool) {
        self.publish_usage = on;
    }

    /// Collect exact `(user, core_ms, close_instant)` tuples per closed
    /// usage segment, for the daemon's window-boundary-correct fairshare
    /// sync. Off by default (nothing bounds the buffer in a sim run).
    pub fn set_collect_usage_events(&mut self, on: bool) {
        self.collect_usage_events = on;
    }

    /// Drains the segment-close events collected since the last call.
    pub fn take_usage_events(&mut self) -> Vec<(UserId, u64, SimTime)> {
        std::mem::take(&mut self.usage_events)
    }

    /// Opens the usage cursor for a job that just started holding cores.
    fn usage_open(&mut self, id: JobId, now: SimTime) {
        self.usage_since.insert(id, now);
    }

    /// Charges the open segment `[since, now)` at the job's *current*
    /// width and restarts the cursor at `now`. Must run after the last
    /// fallible step of a mutation but **before** `cores_allocated`
    /// changes, so every charged segment has constant width and a failed
    /// command leaves the ledger untouched (replay equivalence).
    fn usage_mark(&mut self, id: JobId, now: SimTime) {
        let (Some(since), Some(job)) = (self.usage_since.get_mut(&id), self.jobs.get(&id)) else {
            return;
        };
        let span = now.duration_since(*since).as_millis();
        let charge = job.cores_allocated as u64 * span;
        *self.usage.entry(job.spec.user).or_insert(0) += charge;
        if charge > 0 {
            // Charge-at-close: the whole segment lands at its close
            // instant in the decayed accounts (a segment is at most one
            // width-change interval long, far shorter than any sensible
            // half-life, so the approximation error is negligible — and
            // replay re-issues the identical charge sequence, keeping
            // recovery byte-exact).
            self.usage_hist
                .charge(job.spec.user, job.spec.effective_queue(), charge, now);
            if self.collect_usage_events {
                self.usage_events.push((job.spec.user, charge, now));
            }
        }
        *since = now;
    }

    /// Charges the final segment and drops the cursor (finish, qdel,
    /// preempt, node failure).
    fn usage_close(&mut self, id: JobId, now: SimTime) {
        self.usage_mark(id, now);
        self.usage_since.remove(&id);
    }

    /// Looks up a job.
    pub fn job(&self, id: JobId) -> Result<&Job> {
        self.jobs.get(&id).ok_or(Error::UnknownJob(id))
    }

    /// Iterates all known jobs in id order.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Number of jobs in `Queued` state.
    pub fn queued_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    /// Number of jobs holding resources.
    pub fn active_count(&self) -> usize {
        self.jobs.values().filter(|j| j.state.is_active()).count()
    }

    /// True when no job is queued or running — the workload has drained.
    pub fn is_drained(&self) -> bool {
        self.jobs.values().all(|j| j.state.is_terminal())
    }

    /// `qsub`: validates and queues a job.
    pub fn qsub(&mut self, spec: JobSpec, now: SimTime) -> Result<JobId> {
        spec.validate().map_err(Error::BadSpec)?;
        if spec.cores > self.cluster.total_cores() {
            return Err(Error::RequestExceedsSystem {
                requested: spec.cores,
                capacity: self.cluster.total_cores(),
            });
        }
        let id = JobId(self.next_job_id);
        self.next_job_id += 1;
        // The assigned id is implied by replay order; only the inputs are
        // journalled. The record is built first (the spec moves into the
        // job) but appended only after the insert, like every other hook.
        let record = self.journal.is_some().then(|| Record::Submit {
            spec: spec.clone(),
            now,
        });
        self.jobs.insert(id, Job::new(id, spec, now));
        if let Some(record) = record {
            self.log(record);
        }
        Ok(id)
    }

    /// `qdel`: cancels a job, releasing resources if it was active.
    pub fn qdel(&mut self, id: JobId, now: SimTime) -> Result<()> {
        let job = self.jobs.get_mut(&id).ok_or(Error::UnknownJob(id))?;
        if job.state.is_terminal() {
            return Err(Error::InvalidState {
                job: id,
                operation: "qdel",
                state: "terminal",
            });
        }
        let was_active = job.state.is_active();
        job.state = JobState::Cancelled;
        job.end_time = Some(now);
        if was_active {
            self.cluster.release_all(id)?;
            self.usage_close(id, now);
            self.dyn_pending.remove(&id);
            self.deltas.push(ProfileDelta::Finished { job: id });
        }
        if self.journal.is_some() {
            self.log(Record::Qdel { job: id, now });
        }
        if !self.retain_terminal_jobs {
            self.jobs.remove(&id);
        }
        Ok(())
    }

    /// The mother superior forwarded a `tm_dynget()` — queue it and move
    /// the job to `DynQueued` (paper Fig 3, steps 2–3). Rejects a second
    /// pending request for the same job.
    pub fn tm_dynget(&mut self, id: JobId, extra_cores: u32, now: SimTime) -> Result<()> {
        self.tm_dynget_negotiated(id, extra_cores, None, now)
    }

    /// The negotiation extension (paper §III-C future work): like
    /// [`PbsServer::tm_dynget`], but an unservable request stays queued at
    /// the server until `deadline` — the scheduler reconsiders it every
    /// iteration and reports availability estimates — instead of failing
    /// straight back. Call [`PbsServer::expire_dyn_requests`] as time
    /// passes to time out stale requests.
    pub fn tm_dynget_negotiated(
        &mut self,
        id: JobId,
        extra_cores: u32,
        deadline: Option<SimTime>,
        now: SimTime,
    ) -> Result<()> {
        let job = self.jobs.get_mut(&id).ok_or(Error::UnknownJob(id))?;
        match job.state {
            JobState::Running => {}
            JobState::DynQueued => return Err(Error::DynRequestPending(id)),
            _ => {
                return Err(Error::InvalidState {
                    job: id,
                    operation: "tm_dynget",
                    state: "not running",
                })
            }
        }
        if extra_cores == 0 {
            return Err(Error::BadSpec("dynamic request for zero cores".into()));
        }
        job.state = JobState::DynQueued;
        job.dyn_requests += 1;
        let seq = self.next_dyn_seq;
        self.next_dyn_seq += 1;
        self.dyn_pending.insert(
            id,
            PendingDyn {
                extra_cores,
                seq,
                deadline,
            },
        );
        if self.journal.is_some() {
            self.log(Record::DynGet {
                job: id,
                extra_cores,
                deadline,
                now,
            });
        }
        Ok(())
    }

    /// A `tm_dynfree()` release: takes effect immediately (paper Fig 4).
    pub fn tm_dynfree(&mut self, id: JobId, released: &Allocation, now: SimTime) -> Result<()> {
        let job = self.jobs.get_mut(&id).ok_or(Error::UnknownJob(id))?;
        if !job.state.is_active() {
            return Err(Error::InvalidState {
                job: id,
                operation: "tm_dynfree",
                state: "not active",
            });
        }
        let total = released.total_cores();
        if total >= job.cores_allocated {
            return Err(Error::BadSpec(
                "tm_dynfree may release only a proper subset of the allocation".into(),
            ));
        }
        self.cluster.release_partial(id, released)?;
        self.usage_mark(id, now);
        let job = self.jobs.get_mut(&id).expect("checked above");
        job.cores_allocated -= total;
        let held_cores = job.cores_allocated + job.reserved_extra;
        self.deltas.push(ProfileDelta::Resized {
            job: id,
            held_cores,
        });
        if self.journal.is_some() {
            self.log(Record::DynFree {
                job: id,
                released: released.clone(),
                now,
            });
        }
        Ok(())
    }

    /// The application exited: release everything and record the outcome.
    pub fn job_finished(&mut self, id: JobId, now: SimTime) -> Result<JobOutcome> {
        let job = self.jobs.get_mut(&id).ok_or(Error::UnknownJob(id))?;
        // Validate everything before the first mutation: an out-of-order
        // finish (double delivery, stale timer) must deny, never panic.
        let Some(start_time) = job.start_time.filter(|_| job.state.is_active()) else {
            return Err(Error::InvalidState {
                job: id,
                operation: "finish",
                state: "not active",
            });
        };
        job.state = JobState::Completed;
        job.end_time = Some(now);
        self.dyn_pending.remove(&id);
        self.cluster.release_all(id)?;
        self.usage_close(id, now);
        self.deltas.push(ProfileDelta::Finished { job: id });
        let job = &self.jobs[&id];
        let outcome = JobOutcome {
            id,
            name: job.spec.name.clone(),
            user: job.spec.user,
            class: job.spec.class,
            cores_requested: job.spec.cores,
            cores_final: job.cores_allocated,
            submit_time: job.submit_time,
            start_time,
            end_time: now,
            dyn_requests: job.dyn_requests,
            dyn_grants: job.dyn_grants,
            backfilled: job.backfilled,
        };
        self.accounting.record(outcome.clone());
        if self.journal.is_some() {
            self.log(Record::Finish { job: id, now });
        }
        if !self.retain_terminal_jobs {
            self.jobs.remove(&id);
        }
        Ok(outcome)
    }

    /// Builds the scheduler's view of the current state (paper Algorithm 2,
    /// steps 2–3).
    pub fn snapshot(&self, now: SimTime) -> Snapshot {
        let mut running = Vec::new();
        let mut queued = Vec::new();
        let mut dyn_requests = Vec::new();
        for job in self.jobs.values() {
            match job.state {
                JobState::Running | JobState::DynQueued => {
                    running.push(RunningJob {
                        id: job.id,
                        user: job.spec.user,
                        group: job.spec.group,
                        cores: job.cores_allocated,
                        start_time: job.start_time.expect("running job started"),
                        walltime_end: job.walltime_end().expect("running job started"),
                        backfilled: job.backfilled,
                        reserved_extra: job.reserved_extra,
                        malleable: job.spec.malleable,
                    });
                    // Checked lookup: a DynQueued job without a pending
                    // entry is an invariant breach, but the snapshot path
                    // degrades it to "no request this cycle" rather than
                    // panicking the daemon.
                    if job.state == JobState::DynQueued {
                        if let (Some(pending), Some(remaining_walltime)) =
                            (self.dyn_pending.get(&job.id), job.remaining_walltime(now))
                        {
                            dyn_requests.push(DynRequest {
                                job: job.id,
                                user: job.spec.user,
                                group: job.spec.group,
                                extra_cores: pending.extra_cores,
                                remaining_walltime,
                                seq: pending.seq,
                                deadline: pending.deadline,
                            });
                        }
                    }
                }
                JobState::Queued => {
                    queued.push(QueuedJob {
                        id: job.id,
                        user: job.spec.user,
                        group: job.spec.group,
                        queue: job.spec.effective_queue(),
                        cores: job.spec.cores,
                        walltime: job.spec.walltime,
                        submit_time: job.submit_time,
                        priority_boost: job.spec.priority_boost,
                        suppress_backfill_while_queued: job.spec.suppress_backfill_while_queued,
                        reserve_extra: self.reserve_for(job),
                        moldable: job.spec.moldable,
                    });
                }
                _ => {}
            }
        }
        Snapshot {
            now,
            total_cores: self.cluster.total_cores(),
            running,
            queued,
            dyn_requests,
            usage: None,
            deltas: None,
        }
    }

    /// Like [`PbsServer::snapshot`], but participates in the incremental
    /// timeline protocol: drains the running-set mutations recorded since
    /// the previous incremental snapshot and stamps them with continuity
    /// epochs, letting the scheduler update its availability profile by
    /// delta instead of rebuilding it. [`PbsServer::snapshot`] (which
    /// leaves `deltas` as `None` and drains nothing) remains available for
    /// out-of-band inspection; the scheduler simply rebuilds on the next
    /// epoch gap.
    pub fn snapshot_incremental(&mut self, now: SimTime) -> Snapshot {
        let mut snap = self.snapshot(now);
        snap.usage = self.publish_usage.then(|| self.usage_hist.snapshot(now));
        let base_epoch = self.snapshot_epoch;
        self.snapshot_epoch += 1;
        snap.deltas = Some(DeltaLog {
            base_epoch,
            epoch: self.snapshot_epoch,
            deltas: std::mem::take(&mut self.deltas),
        });
        snap
    }

    /// Applies a scheduler outcome to real state, in the scheduler's
    /// decision order: preemptions and grants first, then starts.
    ///
    /// # Panics
    /// If the scheduler's plan cannot be realised (it planned against the
    /// snapshot this server produced, so failure is a bookkeeping bug).
    pub fn apply(&mut self, outcome: &IterationOutcome, now: SimTime) -> Vec<Applied> {
        let mut applied = Vec::new();
        // Journal the decision set up front (reduced to what `apply` reads);
        // an outcome with no decisions mutates nothing and is not logged.
        let journal_outcome = self.journal.is_some()
            && !(outcome.starts.is_empty()
                && outcome.dyn_decisions.is_empty()
                && outcome.grows.is_empty());

        for decision in &outcome.dyn_decisions {
            match decision {
                DynDecision::Granted {
                    job,
                    extra_cores,
                    preempted,
                    shrunk,
                    ..
                } => {
                    for victim in preempted {
                        self.preempt(*victim, now).expect("preempt planned victim");
                        applied.push(Applied::Preempted { job: *victim });
                    }
                    for resize in shrunk {
                        applied.push(self.resize(*resize, now).expect("planned shrink applies"));
                    }
                    let added = self
                        .cluster
                        .expand(*job, *extra_cores, self.alloc_policy)
                        .expect("planned expansion must fit");
                    // Charge the pre-grant constant-width segment before
                    // the width grows.
                    self.usage_mark(*job, now);
                    let j = self.jobs.get_mut(job).expect("granted job exists");
                    debug_assert_eq!(j.state, JobState::DynQueued);
                    j.state = JobState::Running;
                    j.cores_allocated += extra_cores;
                    j.dyn_grants += 1;
                    // Under the guaranteeing policy the grant consumes the
                    // job's own pre-reserve.
                    j.reserved_extra = j.reserved_extra.saturating_sub(*extra_cores);
                    let held_cores = j.cores_allocated + j.reserved_extra;
                    self.deltas.push(ProfileDelta::Resized {
                        job: *job,
                        held_cores,
                    });
                    self.dyn_pending.remove(job);
                    applied.push(Applied::DynGranted { job: *job, added });
                }
                DynDecision::Rejected { job, reason } => {
                    if let Some(j) = self.jobs.get_mut(job) {
                        if j.state == JobState::DynQueued {
                            j.state = JobState::Running;
                        }
                    }
                    self.dyn_pending.remove(job);
                    applied.push(Applied::DynRejected {
                        job: *job,
                        reason: *reason,
                    });
                }
                DynDecision::Deferred {
                    job,
                    available_hint,
                    ..
                } => {
                    // Negotiation: the request stays pending (the job
                    // remains DynQueued and keeps executing); the next
                    // iteration reconsiders it with its original FIFO seq.
                    debug_assert!(self.dyn_pending.contains_key(job));
                    applied.push(Applied::DynDeferred {
                        job: *job,
                        available_hint: *available_hint,
                    });
                }
            }
        }

        for resize in &outcome.grows {
            applied.push(self.resize(*resize, now).expect("planned grow applies"));
        }

        for start in &outcome.starts {
            let reserve = self.reserve_for(self.jobs.get(&start.job).expect("started job exists"));
            let job = self.jobs.get_mut(&start.job).expect("started job exists");
            assert_eq!(
                job.state,
                JobState::Queued,
                "{}: start of non-queued job",
                start.job
            );
            // Moldable jobs start at the scheduler-chosen width.
            let cores = start.cores.unwrap_or(job.spec.cores);
            job.state = JobState::Running;
            job.start_time = Some(now);
            job.cores_allocated = cores;
            job.backfilled = start.backfilled;
            job.reserved_extra = reserve;
            let walltime_end = job.walltime_end().expect("just started");
            let alloc = self
                .cluster
                .allocate(start.job, cores, self.alloc_policy)
                .expect("planned start must fit");
            self.deltas.push(ProfileDelta::Started {
                job: start.job,
                held_cores: cores + reserve,
                walltime_end,
            });
            self.usage_open(start.job, now);
            applied.push(Applied::Started {
                job: start.job,
                alloc,
                backfilled: start.backfilled,
            });
        }

        if journal_outcome {
            self.log(Record::Outcome {
                outcome: journal::reduce_outcome(outcome),
                now,
            });
        }

        applied
    }

    /// A compute node failed: its allocations are lost and every affected
    /// job is requeued (progress lost). The returned list names the
    /// victims — the fault-tolerance hook the paper's introduction
    /// motivates (spare nodes can be dynamically allocated to them).
    pub fn node_failed(&mut self, node: dynbatch_core::NodeId, now: SimTime) -> Result<Vec<JobId>> {
        let victims = self.cluster.fail_node(node)?;
        for &v in &victims {
            // Release whatever the job still holds on surviving nodes.
            if self.cluster.allocation_of(v).is_some() {
                self.cluster.release_all(v)?;
            }
            self.usage_close(v, now);
            self.dyn_pending.remove(&v);
            let job = self.jobs.get_mut(&v).expect("victim is a known job");
            job.state = JobState::Queued;
            job.start_time = None;
            job.cores_allocated = 0;
            job.backfilled = false;
            self.deltas.push(ProfileDelta::Finished { job: v });
        }
        self.deltas.push(ProfileDelta::CapacityChanged);
        if self.journal.is_some() {
            self.log(Record::NodeFailed { node, now });
        }
        Ok(victims)
    }

    /// A failed node returned to service.
    pub fn node_repaired(&mut self, node: dynbatch_core::NodeId) -> Result<()> {
        self.cluster.repair_node(node)?;
        self.deltas.push(ProfileDelta::CapacityChanged);
        if self.journal.is_some() {
            self.log(Record::NodeRepaired { node });
        }
        Ok(())
    }

    /// Applies a scheduler-initiated malleable resize.
    fn resize(&mut self, r: dynbatch_sched::ResizeDecision, now: SimTime) -> Result<Applied> {
        let job = self.jobs.get(&r.job).ok_or(Error::UnknownJob(r.job))?;
        if !job.state.is_active() {
            return Err(Error::InvalidState {
                job: r.job,
                operation: "resize",
                state: "not active",
            });
        }
        debug_assert_eq!(
            job.cores_allocated, r.from_cores,
            "{}: resize base mismatch",
            r.job
        );
        let changed = if r.to_cores > r.from_cores {
            self.cluster
                .expand(r.job, r.to_cores - r.from_cores, self.alloc_policy)?
        } else {
            let give_back = r.from_cores - r.to_cores;
            let mut alloc = self
                .cluster
                .allocation_of(r.job)
                .ok_or(Error::UnknownJob(r.job))?
                .clone();
            let part = alloc.take(give_back);
            self.cluster.release_partial(r.job, &part)?;
            part
        };
        self.usage_mark(r.job, now);
        let job = self.jobs.get_mut(&r.job).expect("checked above");
        job.cores_allocated = r.to_cores;
        let held_cores = r.to_cores + job.reserved_extra;
        self.deltas.push(ProfileDelta::Resized {
            job: r.job,
            held_cores,
        });
        Ok(Applied::Resized {
            job: r.job,
            from_cores: r.from_cores,
            to_cores: r.to_cores,
            changed,
        })
    }

    /// The pre-reserve a job receives at start under the guaranteeing
    /// policy (its execution model's dynamic demand), 0 otherwise.
    fn reserve_for(&self, job: &Job) -> u32 {
        if self.guarantee_evolving && job.spec.class == dynbatch_core::JobClass::Evolving {
            job.spec.exec.extra_cores()
        } else {
            0
        }
    }

    /// The FIFO sequence number of `id`'s pending dynamic request, if one
    /// is queued. Expiry timers capture this so a firing can be matched
    /// against the *exact* request it was armed for (see
    /// [`PbsServer::expire_dyn_request`]).
    pub fn pending_dyn_seq(&self, id: JobId) -> Option<u64> {
        self.dyn_pending.get(&id).map(|p| p.seq)
    }

    /// Times out one negotiated dynamic request, identified by `(id, seq)`.
    ///
    /// Returns `true` only when that exact request is still pending and its
    /// deadline has passed — the job then returns to `Running` and the
    /// caller must relay the denial. A request that was already granted,
    /// rejected, or superseded by a newer request (different `seq`) makes
    /// this a **no-op**: a stale expiry timer can never revoke a grant nor
    /// kill a successor request (the grant-then-expiry race).
    pub fn expire_dyn_request(&mut self, id: JobId, seq: u64, now: SimTime) -> bool {
        let due = self
            .dyn_pending
            .get(&id)
            .is_some_and(|p| p.seq == seq && p.deadline.is_some_and(|d| now >= d));
        if !due {
            return false;
        }
        self.dyn_pending.remove(&id);
        if let Some(job) = self.jobs.get_mut(&id) {
            if job.state == JobState::DynQueued {
                job.state = JobState::Running;
            }
        }
        if self.journal.is_some() {
            self.log(Record::ExpireOne { job: id, seq, now });
        }
        true
    }

    /// Times out negotiated dynamic requests whose deadline has passed:
    /// each expired job returns to `Running` and its application is told
    /// the request failed (it may retry). Returns the expired jobs.
    pub fn expire_dyn_requests(&mut self, now: SimTime) -> Vec<JobId> {
        let expired: Vec<JobId> = self
            .dyn_pending
            .iter()
            .filter(|(_, p)| p.deadline.is_some_and(|d| now >= d))
            .map(|(&j, _)| j)
            .collect();
        for &id in &expired {
            self.dyn_pending.remove(&id);
            if let Some(job) = self.jobs.get_mut(&id) {
                if job.state == JobState::DynQueued {
                    job.state = JobState::Running;
                }
            }
        }
        if self.journal.is_some() && !expired.is_empty() {
            self.log(Record::ExpireSweep { now });
        }
        expired
    }

    /// Requeues a running backfilled job (preempted for a dynamic request).
    /// Its progress is lost; it competes in the queue again.
    fn preempt(&mut self, id: JobId, now: SimTime) -> Result<()> {
        let job = self.jobs.get(&id).ok_or(Error::UnknownJob(id))?;
        if !job.state.is_active() {
            return Err(Error::InvalidState {
                job: id,
                operation: "preempt",
                state: "not active",
            });
        }
        self.cluster.release_all(id)?;
        self.usage_close(id, now);
        self.dyn_pending.remove(&id);
        let job = self.jobs.get_mut(&id).expect("checked above");
        job.state = JobState::Queued;
        job.start_time = None;
        job.cores_allocated = 0;
        job.backfilled = false;
        self.deltas.push(ProfileDelta::Finished { job: id });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{DfsConfig, ExecutionModel, GroupId, SchedulerConfig, SimDuration, UserId};
    use dynbatch_sched::Maui;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn rigid(name: &str, user: u32, cores: u32, secs: u64) -> JobSpec {
        JobSpec::rigid(
            name,
            UserId(user),
            GroupId(0),
            cores,
            SimDuration::from_secs(secs),
        )
    }

    fn server() -> PbsServer {
        PbsServer::new(Cluster::homogeneous(15, 8), AllocPolicy::Pack)
    }

    fn hp_maui() -> Maui {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        Maui::new(cfg)
    }

    /// Drives one scheduler iteration against the server.
    fn cycle(server: &mut PbsServer, maui: &mut Maui, now: SimTime) -> Vec<Applied> {
        let snap = server.snapshot(now);
        let outcome = maui.iterate(&snap);
        server.apply(&outcome, now)
    }

    #[test]
    fn qsub_then_start() {
        let mut s = server();
        let mut m = hp_maui();
        let id = s.qsub(rigid("A", 0, 16, 100), t(0)).unwrap();
        assert_eq!(s.queued_count(), 1);
        let applied = cycle(&mut s, &mut m, t(0));
        assert!(matches!(&applied[0], Applied::Started { job, .. } if *job == id));
        assert_eq!(s.job(id).unwrap().state, JobState::Running);
        assert_eq!(s.cluster().busy_cores(), 16);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn invalid_qsub_rejected() {
        let mut s = server();
        assert!(matches!(
            s.qsub(rigid("X", 0, 500, 100), t(0)),
            Err(Error::RequestExceedsSystem { .. })
        ));
        let mut bad = rigid("X", 0, 4, 100);
        bad.cores = 0;
        assert!(matches!(s.qsub(bad, t(0)), Err(Error::BadSpec(_))));
    }

    #[test]
    fn finish_records_outcome() {
        let mut s = server();
        let mut m = hp_maui();
        let id = s.qsub(rigid("A", 0, 16, 100), t(5)).unwrap();
        cycle(&mut s, &mut m, t(10));
        let outcome = s.job_finished(id, t(110)).unwrap();
        assert_eq!(outcome.wait(), SimDuration::from_secs(5));
        assert_eq!(outcome.runtime(), SimDuration::from_secs(100));
        assert_eq!(s.cluster().idle_cores(), 120);
        assert!(s.is_drained());
        assert_eq!(s.accounting().outcomes().len(), 1);
    }

    #[test]
    fn dynget_roundtrip_success() {
        let mut s = server();
        let mut m = hp_maui();
        let id = s
            .qsub(
                JobSpec::evolving(
                    "F",
                    UserId(6),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1846, 1230, 4),
                ),
                t(0),
            )
            .unwrap();
        cycle(&mut s, &mut m, t(0));
        assert_eq!(s.job(id).unwrap().state, JobState::Running);

        // Application hits its threshold and calls tm_dynget.
        s.tm_dynget(id, 4, t(295)).unwrap();
        assert_eq!(s.job(id).unwrap().state, JobState::DynQueued);
        // A second request while one is pending is refused.
        assert!(matches!(
            s.tm_dynget(id, 4, t(296)),
            Err(Error::DynRequestPending(_))
        ));

        let applied = cycle(&mut s, &mut m, t(295));
        assert!(applied.iter().any(|a| matches!(
            a,
            Applied::DynGranted { job, added } if *job == id && added.total_cores() == 4
        )));
        let job = s.job(id).unwrap();
        assert_eq!(job.state, JobState::Running);
        assert_eq!(job.cores_allocated, 12);
        assert_eq!(job.dyn_requests, 1);
        assert_eq!(job.dyn_grants, 1);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn dynget_rejected_when_full() {
        let mut s = server();
        let mut m = hp_maui();
        let evolving = s
            .qsub(
                JobSpec::evolving(
                    "F",
                    UserId(6),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1846, 1230, 4),
                ),
                t(0),
            )
            .unwrap();
        let filler = s.qsub(rigid("big", 1, 112, 2000), t(0)).unwrap();
        cycle(&mut s, &mut m, t(0));
        assert_eq!(s.cluster().idle_cores(), 0);
        let _ = filler;

        s.tm_dynget(evolving, 4, t(295)).unwrap();
        let applied = cycle(&mut s, &mut m, t(295));
        assert!(applied.iter().any(|a| matches!(
            a,
            Applied::DynRejected { job, reason: DfsReject::NoResources } if *job == evolving
        )));
        // Back to Running; the application may retry.
        assert_eq!(s.job(evolving).unwrap().state, JobState::Running);
        s.tm_dynget(evolving, 4, t(460)).unwrap();
        assert_eq!(s.job(evolving).unwrap().dyn_requests, 2);
    }

    #[test]
    fn dynfree_releases_subset() {
        let mut s = server();
        let mut m = hp_maui();
        let id = s.qsub(rigid("A", 0, 16, 1000), t(0)).unwrap();
        cycle(&mut s, &mut m, t(0));
        let alloc = s.cluster().allocation_of(id).unwrap().clone();
        let mut part = Allocation::empty();
        let (node, _) = alloc.entries().next().unwrap();
        part.add(node, 4);
        s.tm_dynfree(id, &part, t(100)).unwrap();
        assert_eq!(s.job(id).unwrap().cores_allocated, 12);
        assert_eq!(s.cluster().idle_cores(), 108);
        // Releasing the entire allocation through tm_dynfree is refused.
        let all = s.cluster().allocation_of(id).unwrap().clone();
        assert!(s.tm_dynfree(id, &all, t(101)).is_err());
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn qdel_queued_and_running() {
        let mut s = server();
        let mut m = hp_maui();
        let a = s.qsub(rigid("A", 0, 8, 100), t(0)).unwrap();
        let b = s.qsub(rigid("B", 0, 8, 100), t(0)).unwrap();
        cycle(&mut s, &mut m, t(0));
        s.qdel(a, t(10)).unwrap();
        assert_eq!(s.job(a).unwrap().state, JobState::Cancelled);
        assert_eq!(s.cluster().cores_of(a), 0);
        s.qdel(b, t(10)).unwrap();
        assert!(s.is_drained());
        // Double delete fails.
        assert!(s.qdel(a, t(11)).is_err());
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut s = server();
        let mut m = hp_maui();
        let a = s.qsub(rigid("A", 0, 100, 500), t(0)).unwrap();
        let b = s.qsub(rigid("B", 1, 100, 500), t(1)).unwrap();
        cycle(&mut s, &mut m, t(1));
        let snap = s.snapshot(t(2));
        assert_eq!(snap.running.len(), 1);
        assert_eq!(snap.running[0].id, a);
        assert_eq!(snap.queued.len(), 1);
        assert_eq!(snap.queued[0].id, b);
        assert_eq!(snap.total_cores, 120);
        assert!(snap.dyn_requests.is_empty());
    }

    #[test]
    fn negotiated_request_survives_apply_and_expires() {
        let mut s = server();
        let mut m = hp_maui();
        let evolving = s
            .qsub(
                JobSpec::evolving(
                    "F",
                    UserId(6),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1000, 700, 4),
                ),
                t(0),
            )
            .unwrap();
        let _filler = s.qsub(rigid("big", 1, 112, 2000), t(0)).unwrap();
        cycle(&mut s, &mut m, t(0));
        assert_eq!(s.cluster().idle_cores(), 0);

        // Negotiated request with a deadline at t=500.
        s.tm_dynget_negotiated(evolving, 4, Some(t(500)), t(100))
            .unwrap();
        let applied = cycle(&mut s, &mut m, t(100));
        assert!(applied
            .iter()
            .any(|a| matches!(a, Applied::DynDeferred { .. })));
        // Still pending: the job stays DynQueued across the iteration.
        assert_eq!(s.job(evolving).unwrap().state, JobState::DynQueued);
        // Before the deadline nothing expires.
        assert!(s.expire_dyn_requests(t(400)).is_empty());
        assert_eq!(s.job(evolving).unwrap().state, JobState::DynQueued);
        // At the deadline it expires and the job resumes Running.
        let expired = s.expire_dyn_requests(t(500));
        assert_eq!(expired, vec![evolving]);
        assert_eq!(s.job(evolving).unwrap().state, JobState::Running);
        // The snapshot carries no stale request afterwards.
        assert!(s.snapshot(t(501)).dyn_requests.is_empty());
    }

    #[test]
    fn stale_expiry_never_revokes_a_grant_or_kills_a_successor() {
        // Regression: the expiry path used to sweep *every* due request
        // when any timer fired, so a stale timer could expire a request
        // that had since been granted and replaced. Seq-matched expiry
        // makes the stale firing a no-op.
        let mut s = server();
        let mut m = hp_maui();
        let id = s
            .qsub(
                JobSpec::evolving(
                    "F",
                    UserId(6),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1846, 1230, 4),
                ),
                t(0),
            )
            .unwrap();
        cycle(&mut s, &mut m, t(0));

        // First negotiated request: granted on the idle machine.
        s.tm_dynget_negotiated(id, 4, Some(t(500)), t(100)).unwrap();
        let seq1 = s.pending_dyn_seq(id).expect("pending");
        let applied = cycle(&mut s, &mut m, t(100));
        assert!(applied
            .iter()
            .any(|a| matches!(a, Applied::DynGranted { .. })));
        // Its expiry timer fires after the grant: must be a no-op.
        assert!(!s.expire_dyn_request(id, seq1, t(600)));
        assert_eq!(s.job(id).unwrap().state, JobState::Running);

        // A successor request must not be killable by the stale seq.
        s.tm_dynget_negotiated(id, 4, Some(t(900)), t(700)).unwrap();
        let seq2 = s.pending_dyn_seq(id).expect("pending again");
        assert_ne!(seq1, seq2);
        assert!(!s.expire_dyn_request(id, seq1, t(950)), "stale seq no-ops");
        assert_eq!(s.job(id).unwrap().state, JobState::DynQueued);
        // The matching (seq, past-deadline) firing does expire it.
        assert!(s.expire_dyn_request(id, seq2, t(950)));
        assert_eq!(s.job(id).unwrap().state, JobState::Running);
        // And before its deadline, even the matching seq does nothing.
        s.tm_dynget_negotiated(id, 4, Some(t(2000)), t(960))
            .unwrap();
        let seq3 = s.pending_dyn_seq(id).unwrap();
        assert!(!s.expire_dyn_request(id, seq3, t(1000)));
        assert_eq!(s.job(id).unwrap().state, JobState::DynQueued);
    }

    #[test]
    fn guarantee_reserve_tracked_and_consumed() {
        let mut s = server();
        s.set_guarantee_evolving(true);
        let mut m = {
            let mut cfg = SchedulerConfig::paper_eval();
            cfg.dfs = DfsConfig::highest_priority();
            cfg.guarantee_evolving = true;
            Maui::new(cfg)
        };
        let id = s
            .qsub(
                JobSpec::evolving(
                    "F",
                    UserId(6),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1000, 700, 4),
                ),
                t(0),
            )
            .unwrap();
        cycle(&mut s, &mut m, t(0));
        assert_eq!(s.job(id).unwrap().reserved_extra, 4);
        assert_eq!(s.reserved_unused_cores(), 4);
        // The grant consumes the reserve.
        s.tm_dynget(id, 4, t(160)).unwrap();
        cycle(&mut s, &mut m, t(160));
        let job = s.job(id).unwrap();
        assert_eq!(job.dyn_grants, 1);
        assert_eq!(job.cores_allocated, 12);
        assert_eq!(job.reserved_extra, 0);
        assert_eq!(s.reserved_unused_cores(), 0);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn malleable_resize_round_trip() {
        let mut s = server();
        let mut m = {
            let mut cfg = SchedulerConfig::paper_eval();
            cfg.dfs = DfsConfig::highest_priority();
            cfg.grow_malleable_on_idle = true;
            Maui::new(cfg)
        };
        let id = s
            .qsub(
                JobSpec::malleable("pool", UserId(0), GroupId(0), 16, 8, 64, 16_000),
                t(0),
            )
            .unwrap();
        // First cycle starts it; second grows it onto the idle machine.
        cycle(&mut s, &mut m, t(0));
        assert_eq!(s.job(id).unwrap().cores_allocated, 16);
        let applied = cycle(&mut s, &mut m, t(1));
        let grew = applied.iter().any(|a| {
            matches!(
                a,
                Applied::Resized { job, from_cores: 16, to_cores: 64, .. } if *job == id
            )
        });
        assert!(grew, "{applied:?}");
        assert_eq!(s.job(id).unwrap().cores_allocated, 64);
        assert_eq!(s.cluster().cores_of(id), 64);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn moldable_start_uses_chosen_width() {
        let mut s = server();
        let mut m = hp_maui();
        let id = s
            .qsub(
                JobSpec::moldable("mold", UserId(0), GroupId(0), 8, 8, 48, 9_600),
                t(0),
            )
            .unwrap();
        let applied = cycle(&mut s, &mut m, t(0));
        assert!(applied.iter().any(|a| matches!(
            a,
            Applied::Started { job, alloc, .. } if *job == id && alloc.total_cores() == 48
        )));
        assert_eq!(s.job(id).unwrap().cores_allocated, 48);
    }

    #[test]
    fn usage_charges_constant_width_segments() {
        // An 8-core evolving job runs 150 ms at width 8, grows to 16 and
        // runs another 150 ms: 8×150 + 16×150 = 3600 core-ms — charging
        // final-width × runtime (the old daemon-side bug) would say 4800.
        let mut s = server();
        let mut m = hp_maui();
        let id = s
            .qsub(
                JobSpec::evolving(
                    "F",
                    UserId(7),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1846, 1230, 8),
                ),
                SimTime::ZERO,
            )
            .unwrap();
        cycle(&mut s, &mut m, SimTime::ZERO);
        s.tm_dynget(id, 8, SimTime::from_millis(150)).unwrap();
        cycle(&mut s, &mut m, SimTime::from_millis(150));
        assert_eq!(s.job(id).unwrap().cores_allocated, 16);
        s.job_finished(id, SimTime::from_millis(300)).unwrap();
        assert_eq!(s.usage_core_millis(UserId(7)), 3600);
        assert_eq!(s.usage().collect::<Vec<_>>(), vec![(UserId(7), 3600)]);
    }

    #[test]
    fn usage_survives_recovery_exactly() {
        // Crash mid-run with an open segment: the snapshot carries both
        // the closed core-ms and the open cursor, so the recovered server
        // keeps charging from the exact same split.
        let mut s = server();
        s.enable_journal(0);
        let mut m = hp_maui();
        let a = s.qsub(rigid("A", 1, 8, 100), SimTime::ZERO).unwrap();
        let b = s.qsub(rigid("B", 2, 4, 100), SimTime::ZERO).unwrap();
        cycle(&mut s, &mut m, SimTime::ZERO);
        s.job_finished(a, SimTime::from_millis(500)).unwrap();
        let digest = s.state_digest();
        let mut r = PbsServer::recover(s.take_journal().unwrap()).unwrap();
        assert_eq!(r.state_digest(), digest);
        assert_eq!(r.usage_core_millis(UserId(1)), 8 * 500);
        assert_eq!(r.usage_core_millis(UserId(2)), 0, "open segment uncharged");
        r.job_finished(b, SimTime::from_millis(900)).unwrap();
        assert_eq!(r.usage_core_millis(UserId(2)), 4 * 900);
    }

    #[test]
    fn out_of_order_finish_denies_instead_of_panicking() {
        let mut s = server();
        let mut m = hp_maui();
        let id = s.qsub(rigid("A", 0, 8, 100), t(0)).unwrap();
        // Finish before start: the job is queued, not active.
        assert!(s.job_finished(id, t(1)).is_err());
        cycle(&mut s, &mut m, t(1));
        s.job_finished(id, t(50)).unwrap();
        // Duplicate finish (double-delivered exit) denies too.
        assert!(s.job_finished(id, t(51)).is_err());
        assert!(s.job_finished(JobId(99), t(51)).is_err());
    }

    #[test]
    fn recover_from_journal_matches_live_state() {
        let mut s = server();
        s.enable_journal(0);
        let mut m = hp_maui();
        let a = s.qsub(rigid("A", 0, 16, 100), t(0)).unwrap();
        let b = s.qsub(rigid("B", 1, 64, 500), t(0)).unwrap();
        let ev = s
            .qsub(
                JobSpec::evolving(
                    "F",
                    UserId(6),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1846, 1230, 4),
                ),
                t(1),
            )
            .unwrap();
        cycle(&mut s, &mut m, t(1));
        s.job_finished(a, t(100)).unwrap();
        cycle(&mut s, &mut m, t(100));
        s.tm_dynget_negotiated(ev, 4, Some(t(900)), t(200)).unwrap();
        cycle(&mut s, &mut m, t(200));
        s.qdel(b, t(300)).unwrap();
        let _ = b;

        let digest = s.state_digest();
        let recovered = PbsServer::recover(s.take_journal().unwrap()).unwrap();
        assert_eq!(recovered.state_digest(), digest);
        recovered.cluster().check_invariants().unwrap();
        // The recovered server keeps journaling where the crashed one
        // stopped.
        assert!(recovered.journal().is_some());
    }

    #[test]
    fn compacting_snapshots_bound_the_journal_and_stay_exact() {
        let mut s = server();
        s.enable_journal(4);
        let mut m = hp_maui();
        for i in 0..6 {
            let id = s.qsub(rigid("J", i, 8, 50), t(i as u64)).unwrap();
            cycle(&mut s, &mut m, t(i as u64));
            s.job_finished(id, t(100 + i as u64)).unwrap();
        }
        let journal = s.journal().unwrap();
        assert!(
            journal.len() <= 5,
            "compaction must bound the log, got {} records",
            journal.len()
        );
        let digest = s.state_digest();
        let recovered = PbsServer::recover(s.take_journal().unwrap()).unwrap();
        assert_eq!(recovered.state_digest(), digest);
    }

    #[test]
    fn dyn_requests_carry_fifo_seq() {
        let mut s = server();
        let mut m = hp_maui();
        let a = s
            .qsub(
                JobSpec::evolving(
                    "F",
                    UserId(1),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1000, 700, 4),
                ),
                t(0),
            )
            .unwrap();
        let b = s
            .qsub(
                JobSpec::evolving(
                    "G",
                    UserId(2),
                    GroupId(0),
                    8,
                    ExecutionModel::esp_evolving(1000, 700, 4),
                ),
                t(0),
            )
            .unwrap();
        cycle(&mut s, &mut m, t(0));
        s.tm_dynget(b, 4, t(100)).unwrap();
        s.tm_dynget(a, 4, t(160)).unwrap();
        let snap = s.snapshot(t(161));
        let seq_of = |j: JobId| snap.dyn_requests.iter().find(|r| r.job == j).unwrap().seq;
        assert!(seq_of(b) < seq_of(a), "b asked first");
    }

    #[test]
    fn sharded_scheduler_drives_the_incremental_protocol() {
        // Two identical servers, one scheduled serially and one with two
        // shards, both fed through `snapshot_incremental`: the sharded
        // timeline consumes the same delta logs (starts, dynamic grants,
        // finishes) through its per-shard routing, and every applied
        // effect plus the final server state must match bit for bit.
        let submit = |s: &mut PbsServer| {
            for i in 0..6u32 {
                s.qsub(rigid(&format!("R{i}"), i, 8 + 4 * (i % 3), 300), t(0))
                    .unwrap();
            }
            s.qsub(
                JobSpec::evolving(
                    "E",
                    UserId(9),
                    GroupId(0),
                    16,
                    ExecutionModel::esp_evolving(1000, 700, 8),
                ),
                t(0),
            )
            .unwrap()
        };
        let mut srv_a = server();
        let mut srv_b = server();
        let ev_a = submit(&mut srv_a);
        let ev_b = submit(&mut srv_b);
        assert_eq!(ev_a, ev_b, "identical submissions get identical ids");

        let mut serial = hp_maui();
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        cfg.shards = 2;
        let mut sharded = Maui::new(cfg);
        sharded.set_shard_workers(2);

        let drive = |srv: &mut PbsServer, m: &mut Maui, now: SimTime| {
            let snap = srv.snapshot_incremental(now);
            let outcome = m.iterate(&snap);
            srv.apply(&outcome, now)
        };
        // Start everything, raise a dynamic request, finish a job to free
        // cores, let the request land — exercising Started, Resized and
        // Finished deltas through the shard router's fast path.
        for now in [0u64, 30] {
            let a = drive(&mut srv_a, &mut serial, t(now));
            let b = drive(&mut srv_b, &mut sharded, t(now));
            assert_eq!(a, b, "applied effects diverged at t={now}");
        }
        srv_a.tm_dynget(ev_a, 8, t(60)).unwrap();
        srv_b.tm_dynget(ev_b, 8, t(60)).unwrap();
        let first_running = srv_a
            .snapshot(t(60))
            .running
            .iter()
            .find(|r| r.id != ev_a)
            .expect("a rigid job is running")
            .id;
        srv_a.job_finished(first_running, t(61)).unwrap();
        srv_b.job_finished(first_running, t(61)).unwrap();
        for now in [62u64, 90, 120] {
            let a = drive(&mut srv_a, &mut serial, t(now));
            let b = drive(&mut srv_b, &mut sharded, t(now));
            assert_eq!(a, b, "applied effects diverged at t={now}");
        }

        assert_eq!(srv_a.state_digest(), srv_b.state_digest());
        let stats = sharded.timeline_stats();
        assert!(
            stats.delta_batches >= 1,
            "the sharded timeline never took the delta fast path: {stats:?}"
        );
        srv_b.cluster().check_invariants().unwrap();
    }
}
