//! The extended Maui scheduling iteration (paper Algorithm 2).
//!
//! [`Maui::iterate`] consumes a [`Snapshot`] and produces an
//! [`IterationOutcome`]: which jobs to start (normally or by backfill),
//! which dynamic requests to grant or reject, and which reservations were
//! created. The resource manager applies the outcome; the scheduler itself
//! never touches cluster state, which is what lets the discrete-event
//! simulator and the threaded daemon share this code verbatim.
//!
//! Pass order, following the paper:
//!
//! 1. refresh statistics (DFS intervals, fairshare windows);
//! 2. rank eligible static jobs by priority; order dynamic requests FIFO;
//! 3. *plan* static jobs (reservations, no starts) — the StartNow /
//!    StartLater baseline;
//! 4. for each dynamic request: try idle resources (then preemptible ones,
//!    if the site allows), measure the delays the expansion would inflict
//!    on the top `ReservationDelayDepth` planned jobs, ask the DFS engine,
//!    and commit or reject;
//! 5. schedule static jobs for real (starts + reservations);
//! 6. backfill — unless a queued job suppresses it (the ESP Z rule).

use crate::dfs::{DelayCharge, DfsEngine, DfsReject, DfsVerdict};
use crate::fairshare::FairshareTracker;
use crate::incremental::{profile_from_running, rebuild_into, IncrementalTimeline, TimelineStats};
use crate::plan::plan_starts;
use crate::priority::{priority_of, rank_jobs, FairnessView, Priority};
use crate::reservation::{PlannedStart, Reservation};
use crate::router::{ShardRouter, StealQueues};
use crate::shard::{with_round_pool, ShardedTimeline};
use crate::snapshot::{DynRequest, QueuedJob, RunningJob, Snapshot};
use crate::timeline::{planned_end, AvailabilityProfile};
use crate::usage_history::UsageSnapshot;
use dynbatch_core::{
    BackfillPolicy, FairshareConfig, FairshareMode, JobId, SchedulerConfig, SimTime, UserId,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

/// A batch-system-initiated resize of a running malleable job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeDecision {
    /// The malleable job.
    pub job: JobId,
    /// Cores before.
    pub from_cores: u32,
    /// Cores after.
    pub to_cores: u32,
}

/// A job-start decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartDecision {
    /// The job to start.
    pub job: JobId,
    /// True iff started by the backfill pass.
    pub backfilled: bool,
    /// For moldable jobs: the core count the scheduler chose (within the
    /// job's moldable range). `None` = the requested cores.
    pub cores: Option<u32>,
}

/// The fate of one dynamic request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynDecision {
    /// Expand the job's allocation.
    Granted {
        /// The evolving job.
        job: JobId,
        /// Cores to add.
        extra_cores: u32,
        /// The delays charged to queued jobs (already committed to DFS).
        delays: Vec<DelayCharge>,
        /// Backfilled jobs preempted to make room (empty unless the site
        /// enables `preempt_backfilled_for_dyn`).
        preempted: Vec<JobId>,
        /// Malleable jobs shrunk to make room (empty unless the site
        /// enables `shrink_malleable_for_dyn`).
        shrunk: Vec<ResizeDecision>,
    },
    /// Reject the request; the application continues on its current
    /// allocation (and may retry later).
    Rejected {
        /// The evolving job.
        job: JobId,
        /// Why.
        reason: DfsReject,
    },
    /// Negotiation: the request cannot be served now but its deadline has
    /// not passed — keep it queued and reconsider next iteration. The
    /// batch system "indicates the time of availability of resources"
    /// with its best estimate.
    Deferred {
        /// The evolving job.
        job: JobId,
        /// Why it could not be served right now.
        reason: DfsReject,
        /// Earliest instant the profile suggests the request could fit
        /// (`None` when even the far future cannot fit it).
        available_hint: Option<SimTime>,
    },
}

impl DynDecision {
    /// The evolving job this decision concerns.
    pub fn job(&self) -> JobId {
        match self {
            DynDecision::Granted { job, .. }
            | DynDecision::Rejected { job, .. }
            | DynDecision::Deferred { job, .. } => *job,
        }
    }

    /// True iff granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, DynDecision::Granted { .. })
    }
}

/// Everything one iteration decided.
#[derive(Debug, Clone, Default)]
pub struct IterationOutcome {
    /// Jobs to start, in decision order.
    pub starts: Vec<StartDecision>,
    /// Reservations created (informational; they are re-derived each
    /// iteration).
    pub reservations: Vec<Reservation>,
    /// Decisions on dynamic requests, in FIFO order.
    pub dyn_decisions: Vec<DynDecision>,
    /// The planned starts used as the delay baseline (StartNow/StartLater
    /// classification), for observability.
    pub baseline_plan: Vec<PlannedStart>,
    /// Malleable growths onto idle cores (only under
    /// `grow_malleable_on_idle`).
    pub grows: Vec<ResizeDecision>,
}

impl IterationOutcome {
    /// Jobs granted dynamic resources this iteration.
    pub fn granted_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.dyn_decisions
            .iter()
            .filter(|d| d.is_granted())
            .map(|d| d.job())
    }
}

/// Reusable profile buffers for the dynamic-request what-if pass. One set
/// is allocated per iteration and refilled with
/// [`AvailabilityProfile::assign_from`] per request, so delay measurement
/// performs no per-request heap allocation.
#[derive(Debug)]
struct PlanScratch {
    /// The partition-released view a request draws resources from.
    trial: AvailabilityProfile,
    /// The post-grant world (expansion held, unused partition re-held).
    expanded: AvailabilityProfile,
    /// Consumed by `plan_starts` when measuring before/after starts.
    plan: AvailabilityProfile,
}

impl PlanScratch {
    fn new(now: SimTime, total_cores: u32) -> Self {
        PlanScratch {
            trial: AvailabilityProfile::new(now, total_cores),
            expanded: AvailabilityProfile::new(now, total_cores),
            plan: AvailabilityProfile::new(now, total_cores),
        }
    }
}

/// The delay-measurement "before" plan, tagged with the base-profile
/// revision it was computed against. A grant (or any other base mutation)
/// bumps the revision, so a stale cached plan self-invalidates instead of
/// relying on callers remembering every mutation site.
#[derive(Debug)]
struct CachedPlan {
    base_rev: u64,
    plan: Vec<PlannedStart>,
}

/// The extended Maui scheduler.
#[derive(Debug, Clone)]
pub struct Maui {
    config: SchedulerConfig,
    dfs: DfsEngine,
    fairshare: FairshareTracker,
    /// Reuse the "before" plan across consecutive dynamic requests (it
    /// only changes when a grant mutates the base profile). Disabled via
    /// [`Maui::set_plan_cache_enabled`] for equivalence testing.
    plan_cache_enabled: bool,
    /// Maintain the base profile incrementally from snapshot delta logs
    /// instead of rebuilding from the running set each iteration.
    /// Disabled via [`Maui::set_incremental_enabled`] for equivalence
    /// testing (decisions are byte-identical either way).
    incremental_enabled: bool,
    /// Assert the incremental profile byte-equal to the rebuild on every
    /// iteration even in release builds (debug builds always check).
    incremental_check: bool,
    /// The persistent delta-maintained profile.
    timeline: IncrementalTimeline,
    /// The partitioned timelines behind `shards > 1` (created lazily on
    /// the first sharded iteration).
    sharded: Option<ShardedTimeline>,
    /// Worker-thread count of the sharded planner; 0 = one per available
    /// core, capped at the shard count.
    shard_workers: usize,
    /// Recycled buffer the per-iteration working base is staged in.
    base_buf: AvailabilityProfile,
}

impl Maui {
    /// Builds a scheduler from a site configuration.
    ///
    /// # Panics
    /// If the configuration is invalid.
    pub fn new(config: SchedulerConfig) -> Self {
        config.validate().expect("invalid scheduler configuration");
        let dfs = DfsEngine::new(config.dfs.clone(), SimTime::ZERO);
        let fairshare = FairshareTracker::new(config.fairshare.clone(), SimTime::ZERO);
        Maui {
            config,
            dfs,
            fairshare,
            plan_cache_enabled: true,
            incremental_enabled: true,
            incremental_check: false,
            timeline: IncrementalTimeline::new(),
            sharded: None,
            shard_workers: 0,
            base_buf: AvailabilityProfile::new(SimTime::ZERO, 0),
        }
    }

    /// Reconfigures the shard count (1 = the serial path). Decisions are
    /// byte-identical at every count — the serial path is the executable
    /// spec and the sharded planner commits in the same order — so this
    /// only changes wall-clock. Resets the partitioned timeline; the next
    /// iteration rebuilds it.
    ///
    /// # Panics
    /// If `shards` is zero.
    pub fn set_shards(&mut self, shards: usize) {
        assert!(shards >= 1, "at least one shard");
        self.config.shards = shards;
        self.sharded = None;
        self.timeline.invalidate();
    }

    /// Test/benchmark knob: fixes the worker-thread count of the sharded
    /// planner (0 = one per available core, capped at the shard count).
    /// Results never depend on it; only wall-clock does.
    pub fn set_shard_workers(&mut self, workers: usize) {
        self.shard_workers = workers;
    }

    fn shard_worker_count(&self) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let w = if self.shard_workers > 0 {
            self.shard_workers
        } else {
            auto
        };
        w.clamp(1, self.config.shards)
    }

    /// Test/debug knob: when disabled, the "before" plan of the delay
    /// measurement is recomputed for every dynamic request instead of
    /// cached between grants. Decisions are identical either way (the
    /// integration suite asserts it); the cache only saves work.
    pub fn set_plan_cache_enabled(&mut self, enabled: bool) {
        self.plan_cache_enabled = enabled;
    }

    /// Test/debug knob: when disabled, the base profile is rebuilt from
    /// the running set every iteration (the pre-incremental behaviour)
    /// instead of maintained from snapshot delta logs. Decisions are
    /// byte-identical either way (`tests/timeline_incremental.rs` and the
    /// `perf_smoke` bench both assert it); the delta path only saves
    /// work.
    pub fn set_incremental_enabled(&mut self, enabled: bool) {
        self.incremental_enabled = enabled;
        if !enabled {
            // Deltas drained while the knob is off are never applied;
            // drop continuity so re-enabling starts from a rebuild.
            self.timeline.invalidate();
            if let Some(t) = &mut self.sharded {
                t.invalidate();
            }
        }
    }

    /// Test knob: force the rebuild-equivalence assert even in release
    /// builds (debug builds always check). The quick CI smoke enables
    /// this so the incremental path is exercised under the guard outside
    /// `cfg(debug_assertions)` too.
    pub fn set_incremental_check_enabled(&mut self, enabled: bool) {
        self.incremental_check = enabled;
    }

    /// Counters for the incremental timeline (rebuilds vs delta batches).
    /// With `shards > 1` these come from the partitioned timeline.
    pub fn timeline_stats(&self) -> TimelineStats {
        if self.config.shards > 1 {
            self.sharded
                .as_ref()
                .map_or_else(TimelineStats::default, ShardedTimeline::stats)
        } else {
            self.timeline.stats()
        }
    }

    /// The site configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The dynamic-fairness accountant (for inspection and accounting
    /// hooks).
    pub fn dfs(&self) -> &DfsEngine {
        &self.dfs
    }

    /// Mutable access to the DFS engine (the server notifies job
    /// departures so per-job delay slates are wiped).
    pub fn dfs_mut(&mut self) -> &mut DfsEngine {
        &mut self.dfs
    }

    /// The static-fairshare tracker (read-only).
    pub fn fairshare(&self) -> &FairshareTracker {
        &self.fairshare
    }

    /// The static-fairshare tracker (the server charges usage here).
    pub fn fairshare_mut(&mut self) -> &mut FairshareTracker {
        &mut self.fairshare
    }

    /// Runs one scheduling iteration (paper Algorithm 2).
    ///
    /// With `shards > 1` the three expensive phases (ranking, the
    /// dynamic-request loop, backfill) run speculatively on a
    /// round-synchronised worker pool; all commits are applied in the
    /// serial order, so the outcome is byte-identical to `shards == 1`.
    pub fn iterate(&mut self, snap: &Snapshot) -> IterationOutcome {
        if self.config.shards > 1 {
            return self.iterate_sharded(snap);
        }
        let now = snap.now;
        // Step 4 of Algorithm 1/2: update statistics.
        self.dfs.advance_to(now);
        self.fairshare.advance_to(now);

        // Steps 6–9: select and prioritise static jobs and dynamic
        // requests. The queue is ranked through references — the snapshot
        // is never cloned on this path.
        let fairness = fairness_view(&self.config, &self.fairshare, snap.usage.as_ref());
        let mut ranked: Vec<&QueuedJob> = snap.queued.iter().collect();
        rank_jobs(&mut ranked, now, &self.config.priority, fairness);

        // The base profile carries running jobs' remaining walltimes; all
        // planning happens on top of clones of it. On the incremental
        // path it comes from the persistent delta-maintained timeline
        // (re-anchored to `now`); otherwise it is rebuilt from the
        // running set. The dynamic partition (paper §II-B) is held out of
        // every *static* plan; the dynamic path releases it when sizing
        // requests.
        let mut base = std::mem::replace(&mut self.base_buf, AvailabilityProfile::new(now, 0));
        if self.incremental_enabled {
            self.timeline.advance(snap);
            if cfg!(debug_assertions) || self.incremental_check {
                let rebuilt = profile_from_running(now, snap.total_cores, &snap.running);
                assert_eq!(
                    *self.timeline.profile(),
                    rebuilt,
                    "incremental availability timeline diverged from the rebuild at {now}"
                );
            }
            base.assign_from(self.timeline.profile());
        } else {
            rebuild_into(&mut base, now, snap.total_cores, &snap.running);
        }
        // The partition may be partly consumed by grants during this
        // iteration; `partition` tracks what remains held.
        let partition = self
            .config
            .dyn_partition_cores
            .min(base.min_idle(now, SimTime::MAX));
        if partition > 0 {
            base.hold(now, SimTime::MAX, partition);
        }
        // Step 10: plan static jobs without starting them — the baseline.
        let mut scratch = PlanScratch::new(now, snap.total_cores);
        scratch.plan.assign_from(&base);
        let mut outcome = IterationOutcome {
            baseline_plan: plan_starts(
                &mut scratch.plan,
                &ranked,
                self.config.lookahead_depth(),
                now,
            ),
            ..Default::default()
        };

        // Steps 11–24: the dynamic-request loop, threading the mutable
        // world through evaluate → commit per request (the sharded path
        // runs the same two functions, evaluating speculatively).
        let mut world = DynWorld::new(base, partition, &snap.running);
        if self.config.dynamic_enabled {
            let mut requests: Vec<&DynRequest> = snap.dyn_requests.iter().collect();
            requests.sort_by_key(|r| r.seq);
            // Resolve `JobId → &QueuedJob` once; the delay loop used to
            // rescan the ranked queue per charge.
            let jobs_by_id: HashMap<JobId, &QueuedJob> =
                ranked.iter().map(|j| (j.id, *j)).collect();
            let ctx = DynCtx {
                config: &self.config,
                ranked: &ranked,
                jobs_by_id: &jobs_by_id,
                running: &snap.running,
                usage: snap.usage.as_ref(),
                now,
                plan_cache_enabled: self.plan_cache_enabled,
            };
            for req in requests {
                let eval = evaluate_dynamic(&ctx, &self.dfs, &world, req, &mut scratch);
                let decision = commit_dynamic(&ctx, &mut self.dfs, &mut world, req, eval);
                outcome.dyn_decisions.push(decision);
            }
        }
        let DynWorld {
            base,
            preempted,
            mut cur_cores,
            ..
        } = world;

        // Step 25: schedule static jobs (with starts) and create
        // reservations against the post-grant profile.
        let mut profile = base;
        let (started, reserved) =
            static_pass(&self.config, &ranked, &mut profile, &mut outcome, now);

        // Step 26: backfill.
        if self.config.backfill != BackfillPolicy::None && !snap.backfill_suppressed() {
            for job in &ranked {
                if started.contains(&job.id) || reserved.contains(&job.id) {
                    continue;
                }
                if let Some(width) = mold_fit(&profile, job, now) {
                    profile.hold_for(now, job.walltime, width + job.reserve_extra);
                    outcome.starts.push(StartDecision {
                        job: job.id,
                        backfilled: true,
                        cores: (width != job.cores).then_some(width),
                    });
                }
            }
        }

        // Malleability: pour leftover idle capacity into running malleable
        // jobs (never into cores the reservations already claim).
        grow_pass(
            &self.config,
            &snap.running,
            &mut profile,
            &preempted,
            &mut cur_cores,
            &mut outcome,
            now,
        );

        // Started jobs leave the queue: wipe their per-job DFS slates.
        for s in &outcome.starts {
            self.dfs.job_left_queue(s.job);
        }

        // Recycle the working profile's step buffer for the next
        // iteration.
        self.base_buf = profile;

        outcome
    }

    /// The sharded iteration: same algorithm, same commit order, same
    /// bytes out — but the three expensive phases (ranking, dynamic-
    /// request evaluation, backfill fit tests) run speculatively on a
    /// round-synchronised worker pool, and the base profile is maintained
    /// by the partitioned [`ShardedTimeline`] instead of the serial one.
    ///
    /// Determinism argument, phase by phase:
    ///
    /// * **Base profile** — the merged shard profile is the pointwise sum
    ///   of the per-shard step functions, and the canonical profile form
    ///   is unique, so it is byte-equal to the serial rebuild (asserted
    ///   under the same guard as the serial incremental path).
    /// * **Rank** — workers sort chunks by the total order
    ///   `(cmp_desc, original index)` and the driver k-way-merges with
    ///   the same comparator; job ids are unique, so the order is *the*
    ///   sorted permutation whatever the chunking — identical to the
    ///   serial stable sort.
    /// * **Dynamic requests** — workers evaluate a window of requests
    ///   against the world at revision `r` ([`evaluate_dynamic`] is pure);
    ///   the driver commits strictly in seq order and discards any
    ///   evaluation whose revision went stale. Request *i* is only ever
    ///   committed from an evaluation against exactly the world the
    ///   serial loop would have shown it.
    /// * **Backfill** — same speculate/commit scheme over `mold_fit`,
    ///   with the twist that a miss leaves the profile untouched and so
    ///   does not invalidate the rest of the window.
    ///
    /// Which worker evaluates a task is decided by the deterministic
    /// steal queues ([`ShardRouter::assign_tasks`]), but results land in
    /// task-indexed slots, so thread timing is unobservable.
    fn iterate_sharded(&mut self, snap: &Snapshot) -> IterationOutcome {
        let now = snap.now;
        self.dfs.advance_to(now);
        self.fairshare.advance_to(now);
        let shards = self.config.shards;
        let workers = self.shard_worker_count();

        // Base profile from the partitioned timeline (or a plain rebuild
        // when the incremental path is switched off — serial semantics).
        let mut base = std::mem::replace(&mut self.base_buf, AvailabilityProfile::new(now, 0));
        if self.incremental_enabled {
            let tl = match &mut self.sharded {
                Some(t) if t.shard_count() == shards => t,
                slot => slot.insert(ShardedTimeline::new(shards)),
            };
            let merged = tl.advance(snap);
            if cfg!(debug_assertions) || self.incremental_check {
                let rebuilt = profile_from_running(now, snap.total_cores, &snap.running);
                assert_eq!(
                    *merged, rebuilt,
                    "sharded availability timeline diverged from the rebuild at {now}"
                );
            }
            base.assign_from(merged);
        } else {
            rebuild_into(&mut base, now, snap.total_cores, &snap.running);
        }
        let partition = self
            .config
            .dyn_partition_cores
            .min(base.min_idle(now, SimTime::MAX));
        if partition > 0 {
            base.hold(now, SimTime::MAX, partition);
        }

        // ---- Shared state of the worker pool, hoisted so both closures
        // can borrow it. Everything below is either immutable input or a
        // lock-guarded cell the driver fills between rounds.
        let config = &self.config;
        let fairness = fairness_view(&self.config, &self.fairshare, snap.usage.as_ref());
        let plan_cache_enabled = self.plan_cache_enabled;
        // The DFS engine moves into a lock for the duration of the
        // iteration: workers read it while evaluating, the driver writes
        // it between rounds when committing.
        let dfs_cell = RwLock::new(std::mem::replace(
            &mut self.dfs,
            DfsEngine::new(config.dfs.clone(), now),
        ));

        // Dynamic requests in FIFO order plus their deterministic shard
        // assignment (the router's pure hash-plus-load fold).
        let mut requests: Vec<&DynRequest> = if config.dynamic_enabled {
            snap.dyn_requests.iter().collect()
        } else {
            Vec::new()
        };
        requests.sort_by_key(|r| r.seq);
        let router = ShardRouter::new(shards);
        let assign = router.assign_tasks(requests.iter().map(|r| r.job));
        let dyn_queues = StealQueues::new(&assign, shards);
        let jobs_by_id: HashMap<JobId, &QueuedJob> =
            snap.queued.iter().map(|j| (j.id, j)).collect();

        let phase = AtomicUsize::new(PHASE_IDLE);
        let scratches: Vec<Mutex<PlanScratch>> = (0..workers)
            .map(|_| Mutex::new(PlanScratch::new(now, snap.total_cores)))
            .collect();

        // Rank phase cells.
        let rank_len = snap.queued.len();
        let parallel_rank = workers > 1 && rank_len >= RANK_PARALLEL_MIN;
        let rank_chunks = if parallel_rank {
            (workers * 4).min(rank_len)
        } else {
            0
        };
        let rank_slots: Vec<Mutex<Vec<(Priority, u32)>>> =
            (0..rank_chunks).map(|_| Mutex::new(Vec::new())).collect();
        let rank_cursor = AtomicUsize::new(0);
        let ranked_cell: RwLock<Vec<&QueuedJob>> = RwLock::new(Vec::new());

        // Dynamic phase cells: one slot per request, windowed speculation.
        let world_cell: RwLock<Option<DynWorld>> = RwLock::new(None);
        let dyn_slots: Vec<Mutex<Option<DynEval>>> =
            (0..requests.len()).map(|_| Mutex::new(None)).collect();
        let dyn_next = AtomicUsize::new(0);
        let dyn_window = (4 * workers).max(16);

        // Backfill phase cells: one slot per candidate (bounded by the
        // queue length), claimed through a plain cursor.
        let bf_cell: RwLock<Option<BfParallel>> = RwLock::new(None);
        let bf_cands_cell: RwLock<Vec<&QueuedJob>> = RwLock::new(Vec::new());
        let bf_slots: Vec<Mutex<Option<BfEval>>> =
            (0..rank_len).map(|_| Mutex::new(None)).collect();
        let bf_next = AtomicUsize::new(0);
        let bf_cursor = AtomicUsize::new(0);
        let bf_window = (32 * workers).max(64);

        // What every worker (the driver participates as worker 0) does
        // each round, dispatched on the current phase.
        let work = |_shared: &(), wid: usize| match phase.load(Ordering::Acquire) {
            PHASE_RANK => loop {
                let c = rank_cursor.fetch_add(1, Ordering::Relaxed);
                if c >= rank_chunks {
                    break;
                }
                let (lo, hi) = chunk_bounds(rank_len, rank_chunks, c);
                let mut keys: Vec<(Priority, u32)> = snap.queued[lo..hi]
                    .iter()
                    .enumerate()
                    .map(|(k, j)| {
                        (
                            priority_of(j, now, &config.priority, fairness),
                            (lo + k) as u32,
                        )
                    })
                    .collect();
                keys.sort_unstable_by(|a, b| a.0.cmp_desc(&b.0).then(a.1.cmp(&b.1)));
                *rank_slots[c].lock().expect("rank slot") = keys;
            },
            PHASE_DYN => {
                let ranked_g = ranked_cell.read().expect("ranked cell");
                let world_g = world_cell.read().expect("world cell");
                let Some(w) = world_g.as_ref() else { return };
                let dfs_g = dfs_cell.read().expect("dfs cell");
                let start = dyn_next.load(Ordering::Acquire);
                let end = (start + dyn_window).min(requests.len());
                let rev = w.rev;
                let ctx = DynCtx {
                    config,
                    ranked: &ranked_g,
                    jobs_by_id: &jobs_by_id,
                    running: &snap.running,
                    usage: snap.usage.as_ref(),
                    now,
                    plan_cache_enabled,
                };
                let mut scratch = scratches[wid].lock().expect("scratch");
                while let Some(task) = dyn_queues.next_for(wid) {
                    if task < start || task >= end {
                        continue;
                    }
                    if dyn_slots[task]
                        .lock()
                        .expect("dyn slot")
                        .as_ref()
                        .is_some_and(|e| e.rev == rev)
                    {
                        continue;
                    }
                    let eval = evaluate_dynamic(&ctx, &dfs_g, w, requests[task], &mut scratch);
                    *dyn_slots[task].lock().expect("dyn slot") = Some(eval);
                }
            }
            PHASE_BACKFILL => {
                let cands_g = bf_cands_cell.read().expect("bf cands");
                let st_g = bf_cell.read().expect("bf cell");
                let Some(st) = st_g.as_ref() else { return };
                let start = bf_next.load(Ordering::Acquire);
                let end = (start + bf_window).min(cands_g.len());
                let rev = st.rev;
                loop {
                    let i = bf_cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= end {
                        break;
                    }
                    if i < start {
                        continue;
                    }
                    if bf_slots[i]
                        .lock()
                        .expect("bf slot")
                        .as_ref()
                        .is_some_and(|e| e.rev == rev)
                    {
                        continue;
                    }
                    let fit = mold_fit(&st.profile, cands_g[i], now);
                    *bf_slots[i].lock().expect("bf slot") = Some(BfEval { rev, fit });
                }
            }
            _ => {}
        };

        let drive = |round: &mut dyn FnMut()| -> (IterationOutcome, AvailabilityProfile) {
            // Phase 1: rank. Parallel chunk-sort + merge when the queue is
            // long enough to pay for it; otherwise the serial sort.
            let ranked: Vec<&QueuedJob> = if parallel_rank {
                phase.store(PHASE_RANK, Ordering::Release);
                rank_cursor.store(0, Ordering::Relaxed);
                round();
                phase.store(PHASE_IDLE, Ordering::Release);
                let chunks: Vec<Vec<(Priority, u32)>> = rank_slots
                    .iter()
                    .map(|m| std::mem::take(&mut *m.lock().expect("rank slot")))
                    .collect();
                merge_ranked(&chunks)
                    .into_iter()
                    .map(|i| &snap.queued[i as usize])
                    .collect()
            } else {
                let mut r: Vec<&QueuedJob> = snap.queued.iter().collect();
                rank_jobs(&mut r, now, &config.priority, fairness);
                r
            };
            // Workers read a clone (the driver must not hold a read guard
            // across rounds it participates in).
            ranked_cell
                .write()
                .expect("ranked cell")
                .clone_from(&ranked);

            // Baseline plan (step 10).
            let mut outcome = IterationOutcome::default();
            {
                let mut scratch = scratches[0].lock().expect("scratch");
                scratch.plan.assign_from(&base);
                outcome.baseline_plan =
                    plan_starts(&mut scratch.plan, &ranked, config.lookahead_depth(), now);
            }

            // Phase 2: the dynamic-request loop.
            let mut world = DynWorld::new(base, partition, &snap.running);
            if !requests.is_empty() {
                let ctx = DynCtx {
                    config,
                    ranked: &ranked,
                    jobs_by_id: &jobs_by_id,
                    running: &snap.running,
                    usage: snap.usage.as_ref(),
                    now,
                    plan_cache_enabled,
                };
                if workers == 1 || requests.len() == 1 {
                    // Degenerate path: the plain serial loop.
                    let mut dfs = dfs_cell.write().expect("dfs cell");
                    let mut scratch = scratches[0].lock().expect("scratch");
                    for req in &requests {
                        let eval = evaluate_dynamic(&ctx, &dfs, &world, req, &mut scratch);
                        let d = commit_dynamic(&ctx, &mut dfs, &mut world, req, eval);
                        outcome.dyn_decisions.push(d);
                    }
                } else {
                    *world_cell.write().expect("world cell") = Some(world);
                    phase.store(PHASE_DYN, Ordering::Release);
                    let mut next = 0;
                    while next < requests.len() {
                        {
                            // Pre-warm the "before" plan so the whole
                            // window shares one computation; the value is
                            // exactly what the serial lazy ensure stores
                            // (a pure function of the base at this rev).
                            let mut wg = world_cell.write().expect("world cell");
                            let w = wg.as_mut().expect("world present");
                            let valid = w.before.as_ref().is_some_and(|c| c.base_rev == w.rev);
                            if plan_cache_enabled && !valid {
                                let mut scratch = scratches[0].lock().expect("scratch");
                                scratch.plan.assign_from(&w.base);
                                let plan = plan_starts(
                                    &mut scratch.plan,
                                    &ranked,
                                    config.reservation_delay_depth,
                                    now,
                                );
                                w.before = Some(CachedPlan {
                                    base_rev: w.rev,
                                    plan,
                                });
                            }
                        }
                        dyn_queues.reset();
                        dyn_next.store(next, Ordering::Release);
                        round();
                        let mut wg = world_cell.write().expect("world cell");
                        let w = wg.as_mut().expect("world present");
                        let mut dfs = dfs_cell.write().expect("dfs cell");
                        while next < requests.len() {
                            let taken = dyn_slots[next].lock().expect("dyn slot").take();
                            match taken {
                                Some(e) if e.rev == w.rev => {
                                    let d = commit_dynamic(&ctx, &mut dfs, w, requests[next], e);
                                    outcome.dyn_decisions.push(d);
                                    next += 1;
                                }
                                // Not evaluated yet, or evaluated against
                                // a world a grant has since replaced:
                                // re-evaluate next round.
                                _ => break,
                            }
                        }
                    }
                    phase.store(PHASE_IDLE, Ordering::Release);
                    world = world_cell
                        .write()
                        .expect("world cell")
                        .take()
                        .expect("world present");
                }
            }
            let DynWorld {
                base,
                preempted,
                mut cur_cores,
                ..
            } = world;

            // Phase 3: static starts and reservations (driver-serial — it
            // is a single cheap pass over the ranked queue).
            let mut profile = base;
            let (started, reserved) = static_pass(config, &ranked, &mut profile, &mut outcome, now);

            // Phase 4: backfill.
            if config.backfill != BackfillPolicy::None && !snap.backfill_suppressed() {
                let cands: Vec<&QueuedJob> = ranked
                    .iter()
                    .filter(|j| !started.contains(&j.id) && !reserved.contains(&j.id))
                    .copied()
                    .collect();
                if workers == 1 || cands.len() < 2 {
                    for job in &cands {
                        if let Some(width) = mold_fit(&profile, job, now) {
                            profile.hold_for(now, job.walltime, width + job.reserve_extra);
                            outcome.starts.push(StartDecision {
                                job: job.id,
                                backfilled: true,
                                cores: (width != job.cores).then_some(width),
                            });
                        }
                    }
                } else {
                    bf_cands_cell.write().expect("bf cands").clone_from(&cands);
                    *bf_cell.write().expect("bf cell") = Some(BfParallel { profile, rev: 0 });
                    phase.store(PHASE_BACKFILL, Ordering::Release);
                    let mut next = 0;
                    while next < cands.len() {
                        bf_cursor.store(next, Ordering::Relaxed);
                        bf_next.store(next, Ordering::Release);
                        round();
                        let mut bg = bf_cell.write().expect("bf cell");
                        let st = bg.as_mut().expect("bf state present");
                        while next < cands.len() {
                            let taken = bf_slots[next].lock().expect("bf slot").take();
                            match taken {
                                Some(e) if e.rev == st.rev => {
                                    if let Some(width) = e.fit {
                                        let job = cands[next];
                                        st.profile.hold_for(
                                            now,
                                            job.walltime,
                                            width + job.reserve_extra,
                                        );
                                        outcome.starts.push(StartDecision {
                                            job: job.id,
                                            backfilled: true,
                                            cores: (width != job.cores).then_some(width),
                                        });
                                        // A hit mutates the profile: the
                                        // rest of the window is stale.
                                        st.rev += 1;
                                    }
                                    // A miss leaves the profile unchanged,
                                    // so later evaluations stay valid.
                                    next += 1;
                                }
                                _ => break,
                            }
                        }
                    }
                    phase.store(PHASE_IDLE, Ordering::Release);
                    profile = bf_cell
                        .write()
                        .expect("bf cell")
                        .take()
                        .expect("bf state present")
                        .profile;
                }
            }

            // Phase 5: malleable grows, DFS slate wipes.
            grow_pass(
                config,
                &snap.running,
                &mut profile,
                &preempted,
                &mut cur_cores,
                &mut outcome,
                now,
            );
            let mut dfs = dfs_cell.write().expect("dfs cell");
            for s in &outcome.starts {
                dfs.job_left_queue(s.job);
            }
            (outcome, profile)
        };

        let (outcome, profile) = with_round_pool(workers, &(), work, drive);
        self.dfs = dfs_cell.into_inner().expect("dfs cell");
        self.base_buf = profile;
        outcome
    }
}

/// Phase tags of the sharded worker pool (stored in an atomic the workers
/// dispatch on at the start of every round).
const PHASE_IDLE: usize = 0;
const PHASE_RANK: usize = 1;
const PHASE_DYN: usize = 2;
const PHASE_BACKFILL: usize = 3;

/// Queues shorter than this rank serially — the chunk-sort + merge does
/// not pay for itself.
const RANK_PARALLEL_MIN: usize = 64;

/// Per-round state of the parallel backfill pass.
struct BfParallel {
    profile: AvailabilityProfile,
    rev: u64,
}

/// One speculative backfill fit test, tagged with the profile revision it
/// ran against.
struct BfEval {
    rev: u64,
    fit: Option<u32>,
}

/// Bounds of chunk `c` of `chunks` even slices over `len` items (the
/// first `len % chunks` chunks take one extra item).
fn chunk_bounds(len: usize, chunks: usize, c: usize) -> (usize, usize) {
    let base = len / chunks;
    let rem = len % chunks;
    let lo = c * base + c.min(rem);
    (lo, lo + base + usize::from(c < rem))
}

/// K-way merge of chunk-sorted `(priority, original index)` keys by the
/// total order `(cmp_desc, index)` — job indices are unique, so the
/// result is *the* sorted permutation, independent of chunking, and equal
/// to the serial stable sort by `cmp_desc`.
fn merge_ranked(chunks: &[Vec<(Priority, u32)>]) -> Vec<u32> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; chunks.len()];
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (c, &h) in heads.iter().enumerate() {
            if h >= chunks[c].len() {
                continue;
            }
            best = Some(match best {
                None => c,
                Some(b) => {
                    let (bp, bi) = &chunks[b][heads[b]];
                    let (cp, ci) = &chunks[c][h];
                    if cp.cmp_desc(bp).then(ci.cmp(bi)).is_lt() {
                        c
                    } else {
                        b
                    }
                }
            });
        }
        let b = best.expect("`total` items remain across the heads");
        out.push(chunks[b][heads[b]].1);
        heads[b] += 1;
    }
    out
}

/// Selects the fairness mechanism for this iteration per
/// [`FairshareConfig::mode`]. A pure function of config + published
/// usage, so the serial and sharded paths see the identical view.
fn fairness_view<'a>(
    config: &'a SchedulerConfig,
    tracker: &'a FairshareTracker,
    usage: Option<&'a UsageSnapshot>,
) -> FairnessView<'a> {
    match config.fairshare.mode {
        FairshareMode::Static => FairnessView::Static(tracker),
        FairshareMode::TimeAware => FairnessView::TimeAware {
            config: &config.fairshare,
            usage,
        },
    }
}

/// The heavy-user penalty on the DFS target budget (time-aware mode
/// only): a requesting user above their decayed resource-hour share gets
/// their victims' `DFSTargetDelay` budgets scaled by `target / share`,
/// floored at 1/4 so over-budget users can still obtain small grants.
/// Everyone at or under target — and every static-mode run — scales by
/// exactly 1 (evaluate unchanged).
fn dfs_target_scale(fs: &FairshareConfig, usage: Option<&UsageSnapshot>, user: UserId) -> f64 {
    if fs.mode != FairshareMode::TimeAware || !fs.enabled {
        return 1.0;
    }
    let Some(u) = usage else {
        return 1.0;
    };
    let target = fs
        .user_targets
        .get(&user)
        .copied()
        .unwrap_or(fs.default_target);
    let share = u.user_share(user);
    if target <= 0.0 || share <= target {
        return 1.0;
    }
    (target / share).clamp(0.25, 1.0)
}

/// Read-only inputs of the dynamic-request loop, shared by the serial
/// and sharded paths (and across worker threads in the latter).
struct DynCtx<'a> {
    config: &'a SchedulerConfig,
    ranked: &'a [&'a QueuedJob],
    jobs_by_id: &'a HashMap<JobId, &'a QueuedJob>,
    running: &'a [RunningJob],
    /// Decayed usage accounts published with the snapshot (time-aware
    /// mode), for the DFS heavy-user penalty.
    usage: Option<&'a UsageSnapshot>,
    now: SimTime,
    plan_cache_enabled: bool,
}

/// The mutable world the dynamic loop threads through requests. Only
/// [`commit_dynamic`] mutates it; `rev` counts base-profile mutations so
/// speculative evaluations can detect staleness — every state a
/// [`evaluate_dynamic`] result depends on (base, partition, the preempted
/// set, live core counts, the DFS slate) changes only alongside a `rev`
/// bump.
struct DynWorld {
    /// The base profile (dynamic partition held).
    base: AvailabilityProfile,
    /// Cores of the dynamic partition still held in `base`.
    partition: u32,
    /// Revision counter; bumped by every grant-side mutation.
    rev: u64,
    /// Jobs preempted earlier in this iteration.
    preempted: HashSet<JobId>,
    /// Live view of running jobs' core counts: same-iteration shrinks
    /// must be visible to later dynamic requests and to the grow pass.
    cur_cores: HashMap<JobId, u32>,
    /// The cached "before" plan of the delay measurement.
    before: Option<CachedPlan>,
}

impl DynWorld {
    fn new(base: AvailabilityProfile, partition: u32, running: &[RunningJob]) -> Self {
        DynWorld {
            base,
            partition,
            rev: 0,
            preempted: HashSet::new(),
            cur_cores: running.iter().map(|r| (r.id, r.cores)).collect(),
            before: None,
        }
    }
}

/// What [`evaluate_dynamic`] decided a request deserves, pending commit.
enum DynEvalKind {
    /// The job was preempted earlier this iteration; its request is moot.
    Preempted,
    /// Covered by the job's own pre-reserve (guaranteeing policy).
    FromReserve,
    /// No resources even after shrinks and preemptions (step 22).
    NoFit { hint: Option<SimTime> },
    /// The DFS engine vetoed the measured delays.
    Veto {
        reason: DfsReject,
        hint: Option<SimTime>,
    },
    /// The DFS engine allowed the expansion.
    Grant {
        delays: Vec<DelayCharge>,
        to_preempt: Vec<JobId>,
        to_shrink: Vec<ResizeDecision>,
        /// The post-grant base profile (owned — the scratch buffer it was
        /// staged in is reused by the next evaluation).
        expanded: AvailabilityProfile,
        /// The plan over `expanded`, which becomes the next "before".
        after: Vec<PlannedStart>,
        unused_partition: u32,
    },
}

/// One evaluated dynamic request: pure output of [`evaluate_dynamic`],
/// applied by [`commit_dynamic`] iff `rev` still matches the world.
struct DynEval {
    /// World revision this evaluation is valid against.
    rev: u64,
    /// The "before" plan computed because the cache was stale — installed
    /// at commit, mirroring the serial lazy ensure-and-store.
    computed_before: Option<Vec<PlannedStart>>,
    kind: DynEvalKind,
}

/// The availability hint attached to a deferral, computed only when the
/// request can actually be deferred (a live deadline).
fn defer_hint(req: &DynRequest, base: &AvailabilityProfile, now: SimTime) -> Option<SimTime> {
    match req.deadline {
        Some(d) if now < d => base.earliest_fit(req.extra_cores, req.remaining_walltime, now),
        _ => None,
    }
}

/// Negotiation (future-work extension): a request carrying a live deadline
/// is deferred — kept at the server and reconsidered next iteration, with
/// the scheduler's best availability estimate attached — instead of
/// rejected outright.
fn reject_or_defer(
    req: &DynRequest,
    reason: DfsReject,
    hint: Option<SimTime>,
    now: SimTime,
) -> DynDecision {
    match req.deadline {
        Some(d) if now < d => DynDecision::Deferred {
            job: req.job,
            reason,
            available_hint: hint,
        },
        _ => DynDecision::Rejected {
            job: req.job,
            reason,
        },
    }
}

/// Steps 12–23 for a single dynamic request, side-effect-free: everything
/// the request would do to the world is computed against `w` (at revision
/// `w.rev`) and returned for [`commit_dynamic`] to apply. The serial loop
/// runs evaluate → commit per request; the sharded loop evaluates
/// speculatively on worker threads and commits in seq order, discarding
/// evaluations whose revision went stale — both paths therefore execute
/// the same decision code and produce byte-identical outcomes.
fn evaluate_dynamic(
    ctx: &DynCtx<'_>,
    dfs: &DfsEngine,
    w: &DynWorld,
    req: &DynRequest,
    scratch: &mut PlanScratch,
) -> DynEval {
    let now = ctx.now;
    let rev = w.rev;
    // A job preempted earlier in this very iteration (to feed another
    // dynamic request) is back in the queue; its own pending request is
    // moot.
    if w.preempted.contains(&req.job) {
        return DynEval {
            rev,
            computed_before: None,
            kind: DynEvalKind::Preempted,
        };
    }

    // Guaranteeing policy: a request covered by the job's own pre-reserve
    // is granted instantly — the capacity is already held in every plan,
    // so nobody is delayed and no fairness question arises.
    if let Some(holder) = ctx.running.iter().find(|r| r.id == req.job) {
        if holder.reserved_extra >= req.extra_cores {
            return DynEval {
                rev,
                computed_before: None,
                kind: DynEvalKind::FromReserve,
            };
        }
    }

    // Step 12: try to allocate from the dynamic partition and the idle
    // cores, then (if the site allows) by shrinking malleable jobs, then
    // from preemptible (backfilled) resources — the §II-B source order.
    // The partition hold is lifted only inside the dynamic path: static
    // jobs can never touch it, so partition grants show up as zero delay.
    let trial = &mut scratch.trial;
    trial.assign_from(&w.base);
    if w.partition > 0 {
        // `base` holds the remaining partition to infinity (established
        // in `iterate`); the dynamic path may draw on it.
        trial.release(now, SimTime::MAX, w.partition);
    }
    let mut to_preempt: Vec<JobId> = Vec::new();
    let mut to_shrink: Vec<ResizeDecision> = Vec::new();
    if trial.idle_at(now) < req.extra_cores && ctx.config.shrink_malleable_for_dyn {
        // Shrink the jobs with the most slack first: they lose the
        // smallest fraction of their rate.
        let mut candidates: Vec<&RunningJob> = ctx
            .running
            .iter()
            .filter(|r| {
                r.id != req.job
                    && !w.preempted.contains(&r.id)
                    && r.malleable
                        .is_some_and(|m| w.cur_cores[&r.id] > m.min_cores)
            })
            .collect();
        candidates.sort_by_key(|r| {
            let slack = w.cur_cores[&r.id] - r.malleable.expect("filtered").min_cores;
            (std::cmp::Reverse(slack), r.id)
        });
        for cand in candidates {
            if trial.idle_at(now) >= req.extra_cores {
                break;
            }
            let cores_now = w.cur_cores[&cand.id];
            let min = cand.malleable.expect("filtered").min_cores;
            let deficit = req.extra_cores - trial.idle_at(now);
            let give = (cores_now - min).min(deficit);
            trial.release(now, planned_end(now, cand.walltime_end), give);
            to_shrink.push(ResizeDecision {
                job: cand.id,
                from_cores: cores_now,
                to_cores: cores_now - give,
            });
        }
    }
    if trial.idle_at(now) < req.extra_cores && ctx.config.preempt_backfilled_for_dyn {
        // Preempt the youngest backfilled jobs first: they have
        // sacrificed the least work.
        let mut candidates: Vec<&RunningJob> = ctx
            .running
            .iter()
            .filter(|r| r.backfilled && r.id != req.job && !w.preempted.contains(&r.id))
            .collect();
        candidates.sort_by_key(|r| std::cmp::Reverse((r.start_time, r.id)));
        for cand in candidates {
            if trial.idle_at(now) >= req.extra_cores {
                break;
            }
            trial.release(
                now,
                planned_end(now, cand.walltime_end),
                w.cur_cores[&cand.id],
            );
            to_preempt.push(cand.id);
        }
    }
    if trial.idle_at(now) < req.extra_cores {
        // Step 22: no resources at all.
        return DynEval {
            rev,
            computed_before: None,
            kind: DynEvalKind::NoFit {
                hint: defer_hint(req, &w.base, now),
            },
        };
    }

    // Build the post-grant world for static planning: the expansion held
    // on the partition-free view, then the *unused* slice of the dynamic
    // partition re-held to infinity so static jobs still cannot touch it.
    scratch.expanded.assign_from(&scratch.trial);
    let expanded = &mut scratch.expanded;
    expanded.hold_for(now, req.remaining_walltime, req.extra_cores);
    let unused_partition = w.partition.saturating_sub(req.extra_cores.min(w.partition));
    if unused_partition > 0 {
        expanded.hold(now, SimTime::MAX, unused_partition);
    }

    // Measure delays: plan the top ReservationDelayDepth jobs in the
    // current world (`base`, partition held) and in the post-grant world
    // (paper §III-D). Partition-only grants therefore measure zero delay
    // — static jobs never had those cores. The "before" plan is a pure
    // function of `base`, reused across requests while its revision tag
    // matches; when stale it is recomputed here and installed at commit.
    let depth = ctx.config.reservation_delay_depth;
    let cache_valid =
        ctx.plan_cache_enabled && w.before.as_ref().is_some_and(|c| c.base_rev == rev);
    let computed_before = if cache_valid {
        None
    } else {
        scratch.plan.assign_from(&w.base);
        Some(plan_starts(&mut scratch.plan, ctx.ranked, depth, now))
    };
    let before: &[PlannedStart] = match &computed_before {
        Some(p) => p,
        None => &w.before.as_ref().expect("cache checked valid").plan,
    };
    scratch.plan.assign_from(&scratch.expanded);
    let after = plan_starts(&mut scratch.plan, ctx.ranked, depth, now);

    let mut delays = Vec::new();
    for b in before {
        // Match by job id: a plan may skip a job the other fits (e.g. a
        // full-machine job that only fits once the partition is in use).
        // A job plannable before but not after is pushed past the horizon
        // — charge the delay to its walltime as a bound.
        let job = ctx.jobs_by_id.get(&b.job).expect("planned job is queued");
        let delay = match after.iter().find(|a| a.job == b.job) {
            Some(a) => a.start.duration_since(b.start),
            None => job.walltime,
        };
        delays.push(DelayCharge {
            job: job.id,
            user: job.user,
            group: job.group,
            delay,
        });
    }

    // Steps 14–20: the fairness gate (read-only here; the slate is
    // charged at commit).
    match dfs.evaluate_scaled(
        req.user,
        &delays,
        dfs_target_scale(&ctx.config.fairshare, ctx.usage, req.user),
    ) {
        DfsVerdict::Allowed => DynEval {
            rev,
            computed_before,
            kind: DynEvalKind::Grant {
                delays,
                to_preempt,
                to_shrink,
                expanded: scratch.expanded.clone(),
                after,
                unused_partition,
            },
        },
        DfsVerdict::Rejected(reason) => DynEval {
            rev,
            computed_before,
            kind: DynEvalKind::Veto {
                reason,
                hint: defer_hint(req, &w.base, now),
            },
        },
    }
}

/// Applies one evaluated request to the world — DFS charge, base-profile
/// swap, partition accounting, plan-cache install — and produces the
/// outward decision. Must be called with `eval.rev == w.rev`; the
/// sharded driver guarantees it by discarding stale slots.
fn commit_dynamic(
    ctx: &DynCtx<'_>,
    dfs: &mut DfsEngine,
    w: &mut DynWorld,
    req: &DynRequest,
    eval: DynEval,
) -> DynDecision {
    debug_assert_eq!(eval.rev, w.rev, "committing a stale evaluation");
    let now = ctx.now;
    // The serial semantics store the lazily-computed "before" plan
    // whenever the measurement ran against an invalid cache; install it
    // so later requests at this revision reuse it.
    let cache_valid =
        ctx.plan_cache_enabled && w.before.as_ref().is_some_and(|c| c.base_rev == w.rev);
    match eval.kind {
        DynEvalKind::Preempted => DynDecision::Rejected {
            job: req.job,
            reason: DfsReject::NoResources,
        },
        DynEvalKind::FromReserve => DynDecision::Granted {
            job: req.job,
            extra_cores: req.extra_cores,
            delays: Vec::new(),
            preempted: Vec::new(),
            shrunk: Vec::new(),
        },
        DynEvalKind::NoFit { hint } => reject_or_defer(req, DfsReject::NoResources, hint, now),
        DynEvalKind::Veto { reason, hint } => {
            if !cache_valid {
                if let Some(plan) = eval.computed_before {
                    w.before = Some(CachedPlan {
                        base_rev: w.rev,
                        plan,
                    });
                }
            }
            reject_or_defer(req, reason, hint, now)
        }
        DynEvalKind::Grant {
            delays,
            to_preempt,
            to_shrink,
            expanded,
            after,
            unused_partition,
        } => {
            dfs.commit(req.user, &delays);
            w.base.assign_from(&expanded);
            w.rev += 1;
            w.partition = unused_partition;
            // Re-expand the partition toward its configured width:
            // shrinks and preemptions can leave cores durably free (a
            // preempted job frees its whole width, not just the deficit),
            // and without this the opening clamp would pin the partition
            // below `dyn_partition_cores` for the rest of the iteration.
            let want = ctx.config.dyn_partition_cores.saturating_sub(w.partition);
            let regrow = want.min(w.base.min_idle(now, SimTime::MAX));
            if regrow > 0 {
                w.base.hold(now, SimTime::MAX, regrow);
                w.partition += regrow;
                w.rev += 1;
            }
            // The new base *is* the expanded world — unless the partition
            // just re-grew, the plan computed against it becomes the next
            // request's "before". (A re-grow holds cores `after` was
            // planned without, so the revision tag keeps the cache cold
            // and the next request replans.)
            w.before = (ctx.plan_cache_enabled && regrow == 0).then_some(CachedPlan {
                base_rev: w.rev,
                plan: after,
            });
            w.preempted.extend(to_preempt.iter().copied());
            for r in &to_shrink {
                w.cur_cores.insert(r.job, r.to_cores);
            }
            if let Some(c) = w.cur_cores.get_mut(&req.job) {
                *c += req.extra_cores;
            }
            DynDecision::Granted {
                job: req.job,
                extra_cores: req.extra_cores,
                delays,
                preempted: to_preempt,
                shrunk: to_shrink,
            }
        }
    }
}

/// Step 25: schedule static jobs (with starts) and create reservations
/// against the post-grant profile. Returns the started and reserved job
/// sets the backfill pass must skip. Shared verbatim by the serial and
/// sharded paths.
fn static_pass(
    config: &SchedulerConfig,
    ranked: &[&QueuedJob],
    profile: &mut AvailabilityProfile,
    outcome: &mut IterationOutcome,
    now: SimTime,
) -> (HashSet<JobId>, HashSet<JobId>) {
    let mut blocked = false;
    let mut started: HashSet<JobId> = HashSet::new();
    let mut reserved: HashSet<JobId> = HashSet::new();
    let reservation_limit = match config.backfill {
        BackfillPolicy::Conservative => usize::MAX,
        _ => config.reservation_depth,
    };
    for job in ranked {
        if !blocked {
            if let Some(width) = mold_fit(profile, job, now) {
                profile.hold_for(now, job.walltime, width + job.reserve_extra);
                started.insert(job.id);
                outcome.starts.push(StartDecision {
                    job: job.id,
                    backfilled: false,
                    cores: (width != job.cores).then_some(width),
                });
                continue;
            }
            blocked = true;
        }
        if outcome.reservations.len() < reservation_limit {
            let width = job.cores + job.reserve_extra;
            if let Some(start) = profile.earliest_fit(width, job.walltime, now) {
                // A job whose earliest fit is *now* is not blocked — it
                // is a backfill candidate, not a reservation holder.
                if start > now {
                    let end = start.saturating_add(job.walltime);
                    profile.hold(start, end, width);
                    reserved.insert(job.id);
                    outcome.reservations.push(Reservation {
                        job: job.id,
                        start,
                        end,
                        cores: width,
                    });
                }
            }
        }
    }
    (started, reserved)
}

/// Malleability: pour leftover idle capacity into running malleable jobs
/// (never into cores the reservations already claim). Shared verbatim by
/// the serial and sharded paths.
fn grow_pass(
    config: &SchedulerConfig,
    running: &[RunningJob],
    profile: &mut AvailabilityProfile,
    preempted: &HashSet<JobId>,
    cur_cores: &mut HashMap<JobId, u32>,
    outcome: &mut IterationOutcome,
    now: SimTime,
) {
    if !config.grow_malleable_on_idle {
        return;
    }
    // A shrink decided this very iteration must not be undone by a grow
    // in the same breath.
    let shrunk_now: HashSet<JobId> = outcome
        .dyn_decisions
        .iter()
        .filter_map(|d| match d {
            DynDecision::Granted { shrunk, .. } => Some(shrunk.iter().map(|r| r.job)),
            _ => None,
        })
        .flatten()
        .collect();
    let mut growables: Vec<&RunningJob> = running
        .iter()
        .filter(|r| {
            !preempted.contains(&r.id) && !shrunk_now.contains(&r.id) && r.malleable.is_some()
        })
        .collect();
    growables.sort_by_key(|r| r.id);
    for r in growables {
        let cores_now = cur_cores[&r.id];
        let max = r.malleable.expect("filtered").max_cores;
        if cores_now >= max {
            continue;
        }
        let end = planned_end(now, r.walltime_end);
        let available = profile.min_idle(now, end);
        let give = available.min(max - cores_now);
        if give > 0 {
            profile.hold(now, end, give);
            cur_cores.insert(r.id, cores_now + give);
            outcome.grows.push(ResizeDecision {
                job: r.id,
                from_cores: cores_now,
                to_cores: cores_now + give,
            });
        }
    }
}

/// The core count `job` can start on right now: its requested cores, or —
/// for a moldable job — the largest count in its range that fits (molding
/// happens before start and never after; paper §I). `None` when nothing
/// fits.
///
/// Public for the brute-force oracle test that pins the `reserve_extra`
/// subtraction path; it is not part of the scheduler's driving API.
pub fn mold_fit(profile: &AvailabilityProfile, job: &QueuedJob, now: SimTime) -> Option<u32> {
    let idle = profile.min_idle(now, now.saturating_add(job.walltime));
    match job.moldable {
        None => (idle >= job.cores + job.reserve_extra).then_some(job.cores),
        Some(r) => {
            let best = r.max_cores.min(idle.saturating_sub(job.reserve_extra));
            (best >= r.min_cores).then_some(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservation::StartKind;
    use dynbatch_core::{DfsConfig, GroupId, QueueId, SimDuration, UserId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn running(id: u64, user: u32, cores: u32, end_s: u64) -> RunningJob {
        RunningJob {
            id: JobId(id),
            user: UserId(user),
            group: GroupId(0),
            cores,
            start_time: SimTime::ZERO,
            walltime_end: t(end_s),
            backfilled: false,
            reserved_extra: 0,
            malleable: None,
        }
    }

    fn queued(id: u64, user: u32, cores: u32, walltime_s: u64, submit_s: u64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(user),
            group: GroupId(0),
            queue: QueueId(0),
            cores,
            walltime: d(walltime_s),
            submit_time: t(submit_s),
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        }
    }

    fn dyn_req(job: u64, user: u32, extra: u32, remaining_s: u64, seq: u64) -> DynRequest {
        DynRequest {
            job: JobId(job),
            user: UserId(user),
            group: GroupId(0),
            extra_cores: extra,
            remaining_walltime: d(remaining_s),
            seq,
            deadline: None,
        }
    }

    fn maui(dfs: DfsConfig) -> Maui {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = dfs;
        Maui::new(cfg)
    }

    #[test]
    fn overdue_running_jobs_use_one_grace_clamp_at_every_site() {
        // Regression for the duplicated overdue-grace logic: the base
        // profile builder, the shrink/preempt what-if releases, and the
        // malleable grow pass must all clamp an overdue job's planning
        // window through the same `planned_end` helper. A job whose
        // walltime expired before `now` is held (and released) over
        // `[now, now + grace)`; a raw `walltime_end` at any one site
        // would produce a reversed window and panic, or silently release
        // cores the profile never held.
        let now = t(1000);
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        cfg.shrink_malleable_for_dyn = true;
        cfg.preempt_backfilled_for_dyn = true;
        cfg.grow_malleable_on_idle = true;
        let mut m = Maui::new(cfg);

        // All three running jobs except E are overdue (walltime_end < now).
        let mut bf = running(1, 0, 4, 500); // overdue, preemptible
        bf.backfilled = true;
        let mut shrinkable = running(2, 0, 4, 900); // overdue, malleable
        shrinkable.malleable = Some(dynbatch_core::MalleableRange {
            min_cores: 2,
            max_cores: 8,
        });
        let mut growable = running(4, 0, 2, 950); // overdue, at its minimum
        growable.malleable = Some(dynbatch_core::MalleableRange {
            min_cores: 2,
            max_cores: 8,
        });
        let evolving = running(3, 1, 4, 2000);

        let snap = Snapshot {
            now,
            total_cores: 20,
            running: vec![bf, shrinkable, growable, evolving],
            queued: vec![],
            // +10 forces the full source chain: 6 idle + 2 shrunk from the
            // overdue malleable + 4 preempted from the overdue backfill.
            dyn_requests: vec![dyn_req(3, 1, 10, 1000, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);

        match &out.dyn_decisions[0] {
            DynDecision::Granted {
                preempted, shrunk, ..
            } => {
                assert_eq!(preempted, &[JobId(1)], "overdue backfill preempted");
                assert_eq!(shrunk.len(), 1);
                assert_eq!((shrunk[0].job, shrunk[0].to_cores), (JobId(2), 2));
            }
            other => panic!("expected a grant, got {other:?}"),
        }
        // The grow pass sees the overdue malleable job through the same
        // clamp: 2 cores stay durably free after the over-freeing
        // preemption, and the grow window `[now, planned_end)` is valid.
        assert_eq!(out.grows.len(), 1);
        assert_eq!((out.grows[0].job, out.grows[0].to_cores), (JobId(4), 4));
    }

    #[test]
    fn empty_snapshot_is_a_noop() {
        let mut m = maui(DfsConfig::default());
        let out = m.iterate(&Snapshot {
            total_cores: 120,
            ..Default::default()
        });
        assert!(out.starts.is_empty());
        assert!(out.reservations.is_empty());
        assert!(out.dyn_decisions.is_empty());
    }

    #[test]
    fn starts_jobs_in_priority_order() {
        let mut m = maui(DfsConfig::default());
        let snap = Snapshot {
            now: t(100),
            total_cores: 8,
            running: vec![],
            queued: vec![queued(2, 0, 4, 100, 50), queued(1, 0, 4, 100, 0)],
            dyn_requests: vec![],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert_eq!(out.starts.len(), 2);
        assert_eq!(out.starts[0].job, JobId(1), "older job starts first");
        assert!(!out.starts[0].backfilled);
    }

    #[test]
    fn blocked_job_gets_reservation_and_small_job_backfills() {
        let mut m = maui(DfsConfig::default());
        // 8 cores; a running job holds 6 until t=100.
        // Queued: big job (8 cores, high priority) is blocked until t=100;
        // a small old job (2 cores, 50 s) fits in the hole.
        let snap = Snapshot {
            now: t(0),
            total_cores: 8,
            running: vec![running(1, 0, 6, 100)],
            queued: vec![queued(2, 0, 8, 100, 0), queued(3, 1, 2, 50, 10)],
            dyn_requests: vec![],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert_eq!(out.reservations.len(), 1);
        assert_eq!(out.reservations[0].job, JobId(2));
        assert_eq!(out.reservations[0].start, t(100));
        let bf: Vec<_> = out.starts.iter().filter(|s| s.backfilled).collect();
        assert_eq!(bf.len(), 1);
        assert_eq!(bf[0].job, JobId(3));
    }

    #[test]
    fn backfill_never_delays_the_reservation() {
        let mut m = maui(DfsConfig::default());
        // Same as above but the small job runs 150 s: it would collide
        // with the reservation at t=100 and must not start.
        let snap = Snapshot {
            now: t(0),
            total_cores: 8,
            running: vec![running(1, 0, 6, 100)],
            queued: vec![queued(2, 0, 8, 100, 0), queued(3, 1, 2, 150, 10)],
            dyn_requests: vec![],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert!(out.starts.is_empty(), "nothing may start: {:?}", out.starts);
    }

    #[test]
    fn z_rule_suppresses_backfill() {
        let mut m = maui(DfsConfig::default());
        let mut z = queued(2, 0, 8, 100, 0);
        z.priority_boost = 1_000_000;
        z.suppress_backfill_while_queued = true;
        let snap = Snapshot {
            now: t(0),
            total_cores: 8,
            running: vec![running(1, 0, 6, 100)],
            queued: vec![z, queued(3, 1, 2, 50, 10)],
            dyn_requests: vec![],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert!(
            out.starts.is_empty(),
            "the 50 s job would fit but backfill is suppressed while Z queues"
        );
    }

    #[test]
    fn dyn_request_granted_from_idle_with_hp() {
        let mut m = maui(DfsConfig::highest_priority());
        let snap = Snapshot {
            now: t(10),
            total_cores: 8,
            running: vec![running(1, 0, 4, 200)],
            queued: vec![],
            dyn_requests: vec![dyn_req(1, 0, 4, 190, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert_eq!(out.dyn_decisions.len(), 1);
        assert!(out.dyn_decisions[0].is_granted());
    }

    #[test]
    fn dyn_request_rejected_without_resources() {
        let mut m = maui(DfsConfig::highest_priority());
        let snap = Snapshot {
            now: t(10),
            total_cores: 8,
            running: vec![running(1, 0, 8, 200)],
            queued: vec![],
            dyn_requests: vec![dyn_req(1, 0, 4, 190, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert_eq!(
            out.dyn_decisions[0],
            DynDecision::Rejected {
                job: JobId(1),
                reason: DfsReject::NoResources
            }
        );
    }

    #[test]
    fn static_only_config_ignores_dyn_requests() {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dynamic_enabled = false;
        let mut m = Maui::new(cfg);
        let snap = Snapshot {
            now: t(10),
            total_cores: 8,
            running: vec![running(1, 0, 4, 200)],
            queued: vec![],
            dyn_requests: vec![dyn_req(1, 0, 4, 190, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert!(out.dyn_decisions.is_empty());
    }

    #[test]
    fn fig1_delay_measured_and_hp_grants_anyway() {
        // The paper's Fig 1: 6 nodes. A holds 2 until 8 h, B holds 2 until
        // 4 h, C (4 nodes) queued. A requests the 2 idle nodes.
        let h = 3600;
        let mut m = maui(DfsConfig::highest_priority());
        let snap = Snapshot {
            now: t(0),
            total_cores: 6,
            running: vec![running(1, 0, 2, 8 * h), running(2, 1, 2, 4 * h)],
            queued: vec![queued(3, 2, 4, 4 * h, 0)],
            dyn_requests: vec![dyn_req(1, 0, 2, 8 * h, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        match &out.dyn_decisions[0] {
            DynDecision::Granted { delays, .. } => {
                assert_eq!(delays.len(), 1);
                assert_eq!(delays[0].job, JobId(3));
                // C slips from 4 h to 8 h: a 4-hour delay.
                assert_eq!(delays[0].delay, d(4 * h));
            }
            other => panic!("expected grant, got {other:?}"),
        }
        // And C did not start.
        assert!(out.starts.is_empty());
    }

    #[test]
    fn fig1_delay_rejected_under_target_policy() {
        let h = 3600;
        // Cap each user's cumulative delay at 1 h: the 4 h delay to C is
        // unfair, so the request must be rejected and C's reservation kept.
        let mut m = maui(DfsConfig::uniform_target(3600, SimDuration::from_hours(24)));
        let snap = Snapshot {
            now: t(0),
            total_cores: 6,
            running: vec![running(1, 0, 2, 8 * h), running(2, 1, 2, 4 * h)],
            queued: vec![queued(3, 2, 4, 4 * h, 0)],
            dyn_requests: vec![dyn_req(1, 0, 2, 8 * h, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert!(matches!(
            out.dyn_decisions[0],
            DynDecision::Rejected {
                reason: DfsReject::UserTargetExceeded { .. },
                ..
            }
        ));
        assert_eq!(
            out.reservations[0].start,
            t(4 * h),
            "C's reservation unchanged"
        );
    }

    #[test]
    fn same_user_delay_is_exempt() {
        let h = 3600;
        // As above, but C belongs to the same user as the evolving job A:
        // the delay is not considered and the grant goes through even under
        // a strict policy.
        let mut m = maui(DfsConfig::uniform_target(1, SimDuration::from_hours(24)));
        let snap = Snapshot {
            now: t(0),
            total_cores: 6,
            running: vec![running(1, 0, 2, 8 * h), running(2, 1, 2, 4 * h)],
            queued: vec![queued(3, 0, 4, 4 * h, 0)],
            dyn_requests: vec![dyn_req(1, 0, 2, 8 * h, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert!(out.dyn_decisions[0].is_granted());
    }

    #[test]
    fn delay_depth_bounds_the_charge() {
        let h = 3600;
        // ReservationDelayDepth = 1: only the first StartLater job's delay
        // is measured; a second queued job's delay goes unnoticed.
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.reservation_delay_depth = 1;
        cfg.dfs = DfsConfig::uniform_target(10 * 3600, SimDuration::from_hours(24));
        let mut m = Maui::new(cfg);
        let snap = Snapshot {
            now: t(0),
            total_cores: 6,
            running: vec![running(1, 0, 2, 8 * h), running(2, 1, 2, 4 * h)],
            queued: vec![queued(3, 2, 4, 4 * h, 0), queued(4, 3, 4, 4 * h, 10)],
            dyn_requests: vec![dyn_req(1, 0, 2, 8 * h, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        match &out.dyn_decisions[0] {
            DynDecision::Granted { delays, .. } => {
                assert_eq!(delays.len(), 1, "only depth-1 measured");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn preemption_frees_cores_for_dynamic_request() {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        cfg.preempt_backfilled_for_dyn = true;
        let mut m = Maui::new(cfg);
        // All 8 cores busy: evolving job holds 4, a backfilled job holds 4.
        let mut bf = running(2, 1, 4, 300);
        bf.backfilled = true;
        bf.start_time = t(5);
        let snap = Snapshot {
            now: t(10),
            total_cores: 8,
            running: vec![running(1, 0, 4, 300), bf],
            queued: vec![],
            dyn_requests: vec![dyn_req(1, 0, 4, 290, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        match &out.dyn_decisions[0] {
            DynDecision::Granted { preempted, .. } => {
                assert_eq!(preempted, &vec![JobId(2)]);
            }
            other => panic!("expected preempting grant, got {other:?}"),
        }
    }

    #[test]
    fn without_preemption_option_busy_system_rejects() {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.dfs = DfsConfig::highest_priority();
        cfg.preempt_backfilled_for_dyn = false;
        let mut m = Maui::new(cfg);
        let mut bf = running(2, 1, 4, 300);
        bf.backfilled = true;
        let snap = Snapshot {
            now: t(10),
            total_cores: 8,
            running: vec![running(1, 0, 4, 300), bf],
            queued: vec![],
            dyn_requests: vec![dyn_req(1, 0, 4, 290, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert!(matches!(
            out.dyn_decisions[0],
            DynDecision::Rejected {
                reason: DfsReject::NoResources,
                ..
            }
        ));
    }

    #[test]
    fn fifo_order_of_dynamic_requests() {
        let mut m = maui(DfsConfig::highest_priority());
        // 8 cores, 4 busy; two requests for 4 cores each — only the first
        // (by seq) can be satisfied.
        let snap = Snapshot {
            now: t(10),
            total_cores: 8,
            running: vec![running(1, 0, 2, 200), running(2, 1, 2, 200)],
            queued: vec![],
            dyn_requests: vec![dyn_req(2, 1, 4, 190, 7), dyn_req(1, 0, 4, 190, 3)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert_eq!(out.dyn_decisions.len(), 2);
        assert_eq!(out.dyn_decisions[0].job(), JobId(1), "lower seq first");
        assert!(out.dyn_decisions[0].is_granted());
        assert!(!out.dyn_decisions[1].is_granted());
    }

    #[test]
    fn grant_converts_startnow_to_startlater() {
        // 8 cores: 4 busy until t=100 (evolving). A queued 4-core job could
        // StartNow, but the grant takes those 4 cores until t=100.
        let mut m = maui(DfsConfig::highest_priority());
        let snap = Snapshot {
            now: t(0),
            total_cores: 8,
            running: vec![running(1, 0, 4, 100)],
            queued: vec![queued(2, 1, 4, 50, 0)],
            dyn_requests: vec![dyn_req(1, 0, 4, 100, 0)],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert!(out.dyn_decisions[0].is_granted());
        // Baseline says StartNow...
        assert_eq!(out.baseline_plan[0].kind, StartKind::Now);
        // ...but after the grant the job cannot start and is reserved at
        // t=100.
        assert!(out.starts.is_empty());
        assert_eq!(out.reservations[0].start, t(100));
        // And the charged delay is exactly 100 s.
        match &out.dyn_decisions[0] {
            DynDecision::Granted { delays, .. } => {
                assert_eq!(delays[0].delay, d(100));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn conservative_backfill_reserves_everyone() {
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.backfill = BackfillPolicy::Conservative;
        cfg.reservation_depth = 1;
        let mut m = Maui::new(cfg);
        let snap = Snapshot {
            now: t(0),
            total_cores: 8,
            running: vec![running(1, 0, 8, 100)],
            queued: vec![
                queued(2, 0, 8, 100, 0),
                queued(3, 1, 8, 100, 1),
                queued(4, 2, 8, 100, 2),
            ],
            dyn_requests: vec![],
            usage: None,
            deltas: None,
        };
        let out = m.iterate(&snap);
        assert_eq!(out.reservations.len(), 3, "conservative ignores depth");
    }

    #[test]
    fn deterministic_iteration() {
        let snap = Snapshot {
            now: t(0),
            total_cores: 16,
            running: vec![running(1, 0, 6, 100)],
            queued: vec![
                queued(2, 0, 8, 100, 0),
                queued(3, 1, 2, 50, 10),
                queued(4, 2, 16, 30, 20),
            ],
            dyn_requests: vec![dyn_req(1, 0, 4, 90, 0)],
            usage: None,
            deltas: None,
        };
        let out1 = maui(DfsConfig::highest_priority()).iterate(&snap);
        let out2 = maui(DfsConfig::highest_priority()).iterate(&snap);
        assert_eq!(out1.starts, out2.starts);
        assert_eq!(out1.reservations, out2.reservations);
        assert_eq!(out1.dyn_decisions, out2.dyn_decisions);
    }

    #[test]
    fn shard_smoke_serial_matches_three_shards() {
        // The quick sharded-equivalence gate `scripts/check.sh` runs by
        // name: a busy 120-core snapshot driven through the serial
        // scheduler and the 3-shard scheduler (threaded rounds pinned on
        // with two workers) for a few re-anchoring ticks. Every decision
        // field must be byte-identical; the full-run gates live in
        // `tests/sharded_equivalence.rs`.
        let build = |shards: usize| {
            let mut cfg = SchedulerConfig::paper_eval();
            cfg.dfs = DfsConfig::highest_priority();
            cfg.shards = shards;
            let mut m = Maui::new(cfg);
            m.set_shard_workers(2);
            m
        };
        let mut snap = Snapshot {
            now: t(1_000),
            total_cores: 120,
            running: Vec::new(),
            queued: Vec::new(),
            dyn_requests: Vec::new(),
            usage: None,
            deltas: None,
        };
        for i in 0..40u64 {
            snap.running.push(running(
                i,
                (i % 7) as u32,
                1 + (i % 3) as u32,
                1_200 + 37 * i,
            ));
        }
        for i in 0..30u64 {
            snap.queued.push(queued(
                100 + i,
                (i % 5) as u32,
                2 + (i * i % 17) as u32,
                300 + 91 * i,
                13 * i,
            ));
        }
        for (seq, id) in [0u64, 4, 8, 12, 20, 32].into_iter().enumerate() {
            snap.dyn_requests.push(dyn_req(
                id,
                (id % 7) as u32,
                2 + (id % 4) as u32,
                900 + 31 * id,
                seq as u64,
            ));
        }
        let mut serial = build(1);
        let mut sharded = build(3);
        for tick in 0..3u64 {
            let a = serial.iterate(&snap);
            let b = sharded.iterate(&snap);
            assert_eq!(a.starts, b.starts, "tick {tick}: starts diverged");
            assert_eq!(
                a.dyn_decisions, b.dyn_decisions,
                "tick {tick}: dynamic decisions diverged"
            );
            assert_eq!(
                a.reservations, b.reservations,
                "tick {tick}: reservations diverged"
            );
            assert_eq!(
                a.baseline_plan, b.baseline_plan,
                "tick {tick}: baseline plans diverged"
            );
            assert_eq!(a.grows, b.grows, "tick {tick}: grows diverged");
            snap.now += d(60);
            for r in &mut snap.dyn_requests {
                r.seq += 100; // fresh requests next tick
            }
        }
    }
}
