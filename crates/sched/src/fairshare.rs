//! Static fairshare (classic Maui, paper §III-A).
//!
//! Tracks historical per-user resource usage in fixed windows with
//! geometric decay, and turns the deviation from a configured target share
//! into a priority adjustment. This is the *static* mechanism the paper
//! contrasts with its new *dynamic* fairness (see [`crate::dfs`]): it
//! rebalances users over hours of usage history, but — as §III-D argues —
//! cannot bound the delay a single dynamic allocation inflicts on queued
//! jobs, which is why DFS exists.

use dynbatch_core::{FairshareConfig, SimDuration, SimTime, UserId};
use std::collections::HashMap;

/// Rolling windowed usage tracker.
#[derive(Debug, Clone)]
pub struct FairshareTracker {
    config: FairshareConfig,
    /// `windows[0]` is the current window; older windows follow.
    windows: Vec<HashMap<UserId, f64>>,
    window_start: SimTime,
    /// Total core-seconds charged per window (for share computation).
    totals: Vec<f64>,
}

impl FairshareTracker {
    /// A tracker starting its first window at `start`.
    pub fn new(config: FairshareConfig, start: SimTime) -> Self {
        let n = config.windows.max(1);
        FairshareTracker {
            config,
            windows: vec![HashMap::new(); n],
            totals: vec![0.0; n],
            window_start: start,
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &FairshareConfig {
        &self.config
    }

    /// Advances window rotation to cover `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        if self.config.window.is_zero() {
            return;
        }
        while now >= self.window_start + self.config.window {
            self.windows.rotate_right(1);
            self.windows[0] = HashMap::new();
            self.totals.rotate_right(1);
            self.totals[0] = 0.0;
            self.window_start += self.config.window;
        }
    }

    /// Charges `core_seconds` of usage to `user` in the current window.
    pub fn charge(&mut self, user: UserId, core_seconds: f64) {
        *self.windows[0].entry(user).or_insert(0.0) += core_seconds;
        self.totals[0] += core_seconds;
    }

    /// Convenience: charge a (cores × duration) product.
    pub fn charge_span(&mut self, user: UserId, cores: u32, span: SimDuration) {
        self.charge(user, cores as f64 * span.as_secs_f64());
    }

    /// Total core-seconds charged to `user` across all retained windows,
    /// undecayed — raw bookkeeping, for accounting assertions (the
    /// priority path uses [`FairshareTracker::usage_share`]).
    pub fn charged(&self, user: UserId) -> f64 {
        self.windows
            .iter()
            .map(|w| w.get(&user).copied().unwrap_or(0.0))
            .sum()
    }

    /// The user's decayed usage share across all retained windows,
    /// in `[0, 1]` (0 when the system has seen no usage at all).
    pub fn usage_share(&self, user: UserId) -> f64 {
        let mut usage = 0.0;
        let mut total = 0.0;
        let mut weight = 1.0;
        for (w, t) in self.windows.iter().zip(&self.totals) {
            usage += weight * w.get(&user).copied().unwrap_or(0.0);
            total += weight * t;
            weight *= self.config.decay;
        }
        if total <= 0.0 {
            0.0
        } else {
            usage / total
        }
    }

    /// The fairshare priority component: `target − usage_share`, positive
    /// when the user is under-served.
    pub fn priority_delta(&self, user: UserId) -> f64 {
        if !self.config.enabled {
            return 0.0;
        }
        let target = self
            .config
            .user_targets
            .get(&user)
            .copied()
            .unwrap_or(self.config.default_target);
        target - self.usage_share(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FairshareConfig {
        FairshareConfig {
            enabled: true,
            window: SimDuration::from_hours(1),
            windows: 3,
            decay: 0.5,
            user_targets: HashMap::new(),
            default_target: 0.5,
        }
    }

    #[test]
    fn empty_tracker_is_neutral() {
        let fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(fs.usage_share(UserId(0)), 0.0);
        assert!((fs.priority_delta(UserId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn usage_shares_sum_sensibly() {
        let mut fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        fs.charge(UserId(0), 300.0);
        fs.charge(UserId(1), 100.0);
        assert!((fs.usage_share(UserId(0)) - 0.75).abs() < 1e-12);
        assert!((fs.usage_share(UserId(1)) - 0.25).abs() < 1e-12);
        // Heavy user gets a negative delta, light user positive.
        assert!(fs.priority_delta(UserId(0)) < fs.priority_delta(UserId(1)));
    }

    #[test]
    fn windows_rotate_and_decay() {
        let mut fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        fs.charge(UserId(0), 100.0);
        // Advance one full window: the usage moves into history with
        // weight = decay.
        fs.advance_to(SimTime::ZERO + SimDuration::from_hours(1));
        fs.charge(UserId(1), 100.0);
        // User 0: 0.5·100 decayed; user 1: 1.0·100 current.
        let s0 = fs.usage_share(UserId(0));
        let s1 = fs.usage_share(UserId(1));
        assert!((s0 - (50.0 / 150.0)).abs() < 1e-12, "{s0}");
        assert!((s1 - (100.0 / 150.0)).abs() < 1e-12, "{s1}");
    }

    #[test]
    fn history_falls_off_the_end() {
        let mut fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        fs.charge(UserId(0), 100.0);
        // 3 windows retained; advance 4 → the charge is forgotten.
        fs.advance_to(SimTime::ZERO + SimDuration::from_hours(4));
        assert_eq!(fs.usage_share(UserId(0)), 0.0);
    }

    #[test]
    fn disabled_is_neutral() {
        let mut c = cfg();
        c.enabled = false;
        let mut fs = FairshareTracker::new(c, SimTime::ZERO);
        fs.charge(UserId(0), 1000.0);
        assert_eq!(fs.priority_delta(UserId(0)), 0.0);
    }

    #[test]
    fn charge_span_product() {
        let mut fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        fs.charge_span(UserId(0), 4, SimDuration::from_secs(100));
        assert!((fs.usage_share(UserId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_targets() {
        let mut c = cfg();
        c.user_targets.insert(UserId(7), 0.9);
        let fs = FairshareTracker::new(c, SimTime::ZERO);
        assert!((fs.priority_delta(UserId(7)) - 0.9).abs() < 1e-12);
    }
}
