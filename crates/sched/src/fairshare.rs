//! Static fairshare (classic Maui, paper §III-A).
//!
//! Tracks historical per-user resource usage in fixed windows with
//! geometric decay, and turns the deviation from a configured target share
//! into a priority adjustment. This is the *static* mechanism the paper
//! contrasts with its new *dynamic* fairness (see [`crate::dfs`]): it
//! rebalances users over hours of usage history, but — as §III-D argues —
//! cannot bound the delay a single dynamic allocation inflicts on queued
//! jobs, which is why DFS exists.

use dynbatch_core::{FairshareConfig, SimDuration, SimTime, UserId};
use std::collections::HashMap;

/// Rolling windowed usage tracker.
#[derive(Debug, Clone)]
pub struct FairshareTracker {
    config: FairshareConfig,
    /// `windows[0]` is the current window; older windows follow.
    windows: Vec<HashMap<UserId, f64>>,
    window_start: SimTime,
    /// Total core-seconds charged per window (for share computation).
    totals: Vec<f64>,
}

impl FairshareTracker {
    /// A tracker starting its first window at `start`.
    pub fn new(config: FairshareConfig, start: SimTime) -> Self {
        let n = config.windows.max(1);
        FairshareTracker {
            config,
            windows: vec![HashMap::new(); n],
            totals: vec![0.0; n],
            window_start: start,
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &FairshareConfig {
        &self.config
    }

    /// Advances window rotation to cover `now`.
    ///
    /// A `window` of `ZERO` means an *infinite* window: nothing ever
    /// rotates and usage accumulates forever (see
    /// [`FairshareTracker::usage_share`]; config validation pins
    /// `windows == 1` in that case so the dormant history knobs cannot
    /// silently pretend decay is happening).
    ///
    /// Rotation jumps directly to the target window rather than spinning
    /// one `rotate_right(1)` per elapsed window — a month-scale idle gap
    /// with a 1 h window would otherwise burn ~720 rotations per call on
    /// the scheduler hot path. Equivalence with the naive loop is pinned
    /// by a property test below.
    pub fn advance_to(&mut self, now: SimTime) {
        if self.config.window.is_zero() || now < self.window_start + self.config.window {
            return;
        }
        let w_ms = self.config.window.as_millis();
        let k = (now - self.window_start).as_millis() / w_ms;
        if k >= self.windows.len() as u64 {
            // The gap swallows the whole retained span: clear everything.
            for w in &mut self.windows {
                w.clear();
            }
            for t in &mut self.totals {
                *t = 0.0;
            }
        } else {
            let k = k as usize;
            self.windows.rotate_right(k);
            for w in &mut self.windows[..k] {
                w.clear();
            }
            self.totals.rotate_right(k);
            for t in &mut self.totals[..k] {
                *t = 0.0;
            }
        }
        self.window_start += SimDuration::from_millis(k * w_ms);
    }

    /// Charges `core_seconds` of usage to `user` in the current window.
    pub fn charge(&mut self, user: UserId, core_seconds: f64) {
        *self.windows[0].entry(user).or_insert(0.0) += core_seconds;
        self.totals[0] += core_seconds;
    }

    /// Charges `core_seconds` to `user`, attributed to the instant `at`
    /// the underlying usage segment closed — not to whichever window is
    /// current when the charge is synced. A segment that closed just
    /// before a window boundary lands in the window covering its close
    /// time even when the sync happens after the boundary, so streamed
    /// and eager runs (different sync cadence) agree on decayed shares.
    pub fn charge_at(&mut self, user: UserId, core_seconds: f64, at: SimTime) {
        self.advance_to(at);
        if self.config.window.is_zero() || at >= self.window_start {
            self.charge(user, core_seconds);
            return;
        }
        // A later event already rotated past `at`: back-attribute into
        // the historical window covering it. `behind ∈ ((i−1)·w, i·w]`
        // maps to `windows[i]`.
        let behind = (self.window_start - at).as_millis();
        let w_ms = self.config.window.as_millis();
        let idx = ((behind - 1) / w_ms + 1) as usize;
        if idx < self.windows.len() {
            *self.windows[idx].entry(user).or_insert(0.0) += core_seconds;
            self.totals[idx] += core_seconds;
        }
        // Older than the retained span: already fully decayed, drop.
    }

    /// Convenience: charge a (cores × duration) product.
    pub fn charge_span(&mut self, user: UserId, cores: u32, span: SimDuration) {
        self.charge(user, cores as f64 * span.as_secs_f64());
    }

    /// Total core-seconds charged to `user` across all retained windows,
    /// undecayed — raw bookkeeping, for accounting assertions (the
    /// priority path uses [`FairshareTracker::usage_share`]).
    pub fn charged(&self, user: UserId) -> f64 {
        self.windows
            .iter()
            .map(|w| w.get(&user).copied().unwrap_or(0.0))
            .sum()
    }

    /// The user's decayed usage share across all retained windows,
    /// in `[0, 1]` (0 when the system has seen no usage at all).
    ///
    /// With an infinite window (`window == ZERO`) this is explicitly the
    /// user's lifetime usage over lifetime total — no decay applies.
    pub fn usage_share(&self, user: UserId) -> f64 {
        if self.config.window.is_zero() {
            let total = self.totals[0];
            return if total <= 0.0 {
                0.0
            } else {
                self.windows[0].get(&user).copied().unwrap_or(0.0) / total
            };
        }
        let mut usage = 0.0;
        let mut total = 0.0;
        let mut weight = 1.0;
        for (w, t) in self.windows.iter().zip(&self.totals) {
            usage += weight * w.get(&user).copied().unwrap_or(0.0);
            total += weight * t;
            weight *= self.config.decay;
        }
        if total <= 0.0 {
            0.0
        } else {
            usage / total
        }
    }

    /// The fairshare priority component: `target − usage_share`, positive
    /// when the user is under-served.
    pub fn priority_delta(&self, user: UserId) -> f64 {
        if !self.config.enabled {
            return 0.0;
        }
        let target = self
            .config
            .user_targets
            .get(&user)
            .copied()
            .unwrap_or(self.config.default_target);
        target - self.usage_share(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FairshareConfig {
        FairshareConfig {
            enabled: true,
            window: SimDuration::from_hours(1),
            windows: 3,
            decay: 0.5,
            default_target: 0.5,
            ..FairshareConfig::default()
        }
    }

    #[test]
    fn empty_tracker_is_neutral() {
        let fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        assert_eq!(fs.usage_share(UserId(0)), 0.0);
        assert!((fs.priority_delta(UserId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn usage_shares_sum_sensibly() {
        let mut fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        fs.charge(UserId(0), 300.0);
        fs.charge(UserId(1), 100.0);
        assert!((fs.usage_share(UserId(0)) - 0.75).abs() < 1e-12);
        assert!((fs.usage_share(UserId(1)) - 0.25).abs() < 1e-12);
        // Heavy user gets a negative delta, light user positive.
        assert!(fs.priority_delta(UserId(0)) < fs.priority_delta(UserId(1)));
    }

    #[test]
    fn windows_rotate_and_decay() {
        let mut fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        fs.charge(UserId(0), 100.0);
        // Advance one full window: the usage moves into history with
        // weight = decay.
        fs.advance_to(SimTime::ZERO + SimDuration::from_hours(1));
        fs.charge(UserId(1), 100.0);
        // User 0: 0.5·100 decayed; user 1: 1.0·100 current.
        let s0 = fs.usage_share(UserId(0));
        let s1 = fs.usage_share(UserId(1));
        assert!((s0 - (50.0 / 150.0)).abs() < 1e-12, "{s0}");
        assert!((s1 - (100.0 / 150.0)).abs() < 1e-12, "{s1}");
    }

    #[test]
    fn history_falls_off_the_end() {
        let mut fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        fs.charge(UserId(0), 100.0);
        // 3 windows retained; advance 4 → the charge is forgotten.
        fs.advance_to(SimTime::ZERO + SimDuration::from_hours(4));
        assert_eq!(fs.usage_share(UserId(0)), 0.0);
    }

    #[test]
    fn disabled_is_neutral() {
        let mut c = cfg();
        c.enabled = false;
        let mut fs = FairshareTracker::new(c, SimTime::ZERO);
        fs.charge(UserId(0), 1000.0);
        assert_eq!(fs.priority_delta(UserId(0)), 0.0);
    }

    #[test]
    fn charge_span_product() {
        let mut fs = FairshareTracker::new(cfg(), SimTime::ZERO);
        fs.charge_span(UserId(0), 4, SimDuration::from_secs(100));
        assert!((fs.usage_share(UserId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_targets() {
        let mut c = cfg();
        c.user_targets.insert(UserId(7), 0.9);
        let fs = FairshareTracker::new(c, SimTime::ZERO);
        assert!((fs.priority_delta(UserId(7)) - 0.9).abs() < 1e-12);
    }

    /// The naive one-rotation-per-window loop the jump in `advance_to`
    /// replaced — retained as the executable specification.
    fn naive_advance(fs: &mut FairshareTracker, now: SimTime) {
        if fs.config.window.is_zero() {
            return;
        }
        while now >= fs.window_start + fs.config.window {
            fs.windows.rotate_right(1);
            fs.windows[0] = HashMap::new();
            fs.totals.rotate_right(1);
            fs.totals[0] = 0.0;
            fs.window_start += fs.config.window;
        }
    }

    fn assert_trackers_equal(a: &FairshareTracker, b: &FairshareTracker, ctx: &str) {
        assert_eq!(a.window_start, b.window_start, "{ctx}: window_start");
        assert_eq!(a.totals, b.totals, "{ctx}: totals");
        assert_eq!(a.windows, b.windows, "{ctx}: windows");
    }

    #[test]
    fn advance_jump_matches_naive_loop() {
        // Property test: random interleavings of charges and advances —
        // including month-scale gaps that swallow the retained span —
        // leave the jump tracker in exactly the naive tracker's state.
        let mut rng = 0x2014_2014_u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for windows in [1usize, 2, 3, 8] {
            let mut c = cfg();
            c.windows = windows;
            let mut fast = FairshareTracker::new(c.clone(), SimTime::ZERO);
            let mut slow = FairshareTracker::new(c, SimTime::ZERO);
            let mut now = SimTime::ZERO;
            for step in 0..200 {
                // Gaps from sub-window to ~a month (window is 1 h).
                let gap_ms = match next() % 4 {
                    0 => next() % 3_600_000,             // within-window
                    1 => 3_600_000 + next() % 3_600_000, // one-ish window
                    2 => next() % (24 * 3_600_000),      // up to a day
                    _ => next() % (31 * 24 * 3_600_000), // up to a month
                };
                now += SimDuration::from_millis(gap_ms);
                fast.advance_to(now);
                naive_advance(&mut slow, now);
                let user = UserId((next() % 5) as u32);
                let amount = (next() % 1000) as f64;
                fast.charge(user, amount);
                slow.charge(user, amount);
                assert_trackers_equal(&fast, &slow, &format!("windows={windows} step={step}"));
            }
        }
    }

    #[test]
    fn charge_at_attributes_to_closing_window() {
        // A segment closing at t=59 min synced after the 1 h boundary
        // must land in the *previous* window, exactly as if it had been
        // charged before the boundary.
        let close = SimTime::ZERO + SimDuration::from_mins(59);
        let sync = SimTime::ZERO + SimDuration::from_mins(61);

        let mut eager = FairshareTracker::new(cfg(), SimTime::ZERO);
        eager.advance_to(close);
        eager.charge(UserId(0), 100.0);
        eager.advance_to(sync);

        let mut late = FairshareTracker::new(cfg(), SimTime::ZERO);
        late.advance_to(sync);
        late.charge_at(UserId(0), 100.0, close);

        assert_trackers_equal(&eager, &late, "boundary-crossing sync");
        // And two windows back: close in window 0, sync two boundaries on.
        let sync2 = SimTime::ZERO + SimDuration::from_mins(125);
        eager.advance_to(sync2);
        late.advance_to(sync2);
        late.charge_at(UserId(1), 50.0, close);
        let mut eager2 = eager.clone();
        eager2.windows[2].insert(UserId(1), 50.0);
        eager2.totals[2] += 50.0;
        assert_trackers_equal(&eager2, &late, "two windows back");
        // Older than the retained span: dropped entirely.
        let far = SimTime::ZERO + SimDuration::from_hours(100);
        late.advance_to(far);
        let before = late.clone();
        late.charge_at(UserId(2), 7.0, close);
        assert_trackers_equal(&before, &late, "beyond retained span");
    }

    #[test]
    fn charge_at_in_current_window_is_plain_charge() {
        let mut a = FairshareTracker::new(cfg(), SimTime::ZERO);
        let mut b = FairshareTracker::new(cfg(), SimTime::ZERO);
        let t = SimTime::ZERO + SimDuration::from_mins(10);
        a.advance_to(t);
        a.charge(UserId(0), 42.0);
        b.charge_at(UserId(0), 42.0, t);
        assert_trackers_equal(&a, &b, "current window");
    }

    #[test]
    fn infinite_window_accumulates_forever() {
        let mut c = cfg();
        c.window = SimDuration::ZERO;
        c.windows = 1;
        let mut fs = FairshareTracker::new(c, SimTime::ZERO);
        fs.charge(UserId(0), 300.0);
        fs.advance_to(SimTime::ZERO + SimDuration::from_hours(10_000));
        fs.charge(UserId(1), 100.0);
        // Lifetime usage over lifetime total, no decay ever.
        assert!((fs.usage_share(UserId(0)) - 0.75).abs() < 1e-12);
        assert!((fs.usage_share(UserId(1)) - 0.25).abs() < 1e-12);
        // charge_at degenerates to charge.
        fs.charge_at(UserId(1), 100.0, SimTime::ZERO);
        assert!((fs.usage_share(UserId(1)) - 0.4).abs() < 1e-12);
    }
}
