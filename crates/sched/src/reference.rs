//! Naive reference implementations — the executable specification.
//!
//! [`NaiveProfile`] is the original O(n²) formulation of the
//! availability timeline, kept verbatim: `hold`/`release` scan and
//! re-coalesce the whole step vector, `earliest_fit` materialises a
//! candidate list and re-scans the steps per candidate. It exists for
//! two jobs:
//!
//! 1. the property suite (`tests/prop_timeline.rs`) checks the windowed
//!    [`crate::AvailabilityProfile`] against it on random operation
//!    sequences — observational equivalence over `steps()` / `idle_at` /
//!    `min_idle` / `earliest_fit`;
//! 2. the `perf_smoke` harness (in `dynbatch-bench`) times it as the
//!    pre-optimisation baseline recorded in `BENCH_sched.json`.
//!
//! Do not "optimise" this module: its value is being obviously correct.

use dynbatch_core::{SimDuration, SimTime};

/// The step function `time → idle cores`, in its original naive
/// formulation. Semantically identical to [`crate::AvailabilityProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveProfile {
    origin: SimTime,
    capacity: u32,
    steps: Vec<(SimTime, u32)>,
}

impl NaiveProfile {
    /// A fully idle profile: `capacity` cores free from `origin` onwards.
    pub fn new(origin: SimTime, capacity: u32) -> Self {
        NaiveProfile {
            origin,
            capacity,
            steps: vec![(origin, capacity)],
        }
    }

    /// The profile's origin.
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Total cores the profile was built with.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Idle cores at instant `t`.
    pub fn idle_at(&self, t: SimTime) -> u32 {
        assert!(t >= self.origin, "query before profile origin");
        match self.steps.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(i) => self.steps[i].1,
            Err(0) => unreachable!("first step is at origin"),
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Minimum idle cores over `[from, to)` — full linear scan.
    pub fn min_idle(&self, from: SimTime, to: SimTime) -> u32 {
        assert!(from >= self.origin && to >= from);
        if from == to {
            return self.idle_at(from);
        }
        let mut min = self.idle_at(from);
        for &(s, idle) in &self.steps {
            if s > from && s < to {
                min = min.min(idle);
            }
        }
        min
    }

    /// Subtracts `cores` over `[from, to)` — full scan + global coalesce.
    pub fn hold(&mut self, from: SimTime, to: SimTime, cores: u32) {
        assert!(from >= self.origin, "hold starts before origin");
        if cores == 0 || from >= to {
            return;
        }
        self.ensure_breakpoint(from);
        if to < SimTime::MAX {
            self.ensure_breakpoint(to);
        }
        for step in &mut self.steps {
            if step.0 >= from && (to == SimTime::MAX || step.0 < to) {
                assert!(
                    step.1 >= cores,
                    "hold over-commits at {}: {} idle < {cores}",
                    step.0,
                    step.1
                );
                step.1 -= cores;
            }
        }
        self.coalesce();
    }

    /// Convenience: hold for a duration starting at `from`.
    pub fn hold_for(&mut self, from: SimTime, duration: SimDuration, cores: u32) {
        self.hold(from, from.saturating_add(duration), cores);
    }

    /// Returns `cores` over `[from, to)` — full scan + global coalesce.
    pub fn release(&mut self, from: SimTime, to: SimTime, cores: u32) {
        assert!(from >= self.origin);
        if cores == 0 || from >= to {
            return;
        }
        self.ensure_breakpoint(from);
        if to < SimTime::MAX {
            self.ensure_breakpoint(to);
        }
        for step in &mut self.steps {
            if step.0 >= from && (to == SimTime::MAX || step.0 < to) {
                assert!(
                    step.1 + cores <= self.capacity,
                    "release exceeds capacity at {}",
                    step.0
                );
                step.1 += cores;
            }
        }
        self.coalesce();
    }

    /// Earliest fit — candidate list plus per-candidate rescan (O(n²)).
    pub fn earliest_fit(
        &self,
        cores: u32,
        duration: SimDuration,
        not_before: SimTime,
    ) -> Option<SimTime> {
        if cores > self.capacity {
            return None;
        }
        if cores == 0 {
            return Some(not_before.max(self.origin));
        }
        let start0 = not_before.max(self.origin);
        let mut candidates: Vec<SimTime> = vec![start0];
        candidates.extend(self.steps.iter().map(|&(s, _)| s).filter(|&s| s > start0));
        'candidate: for &t in &candidates {
            if self.idle_at(t) < cores {
                continue;
            }
            let end = t.saturating_add(duration);
            for &(s, idle) in &self.steps {
                if s > t && s < end && idle < cores {
                    continue 'candidate;
                }
            }
            return Some(t);
        }
        None
    }

    /// All breakpoints.
    pub fn steps(&self) -> &[(SimTime, u32)] {
        &self.steps
    }

    fn ensure_breakpoint(&mut self, t: SimTime) {
        match self.steps.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(_) => {}
            Err(i) => {
                debug_assert!(i > 0, "breakpoint before origin");
                let inherited = self.steps[i - 1].1;
                self.steps.insert(i, (t, inherited));
            }
        }
    }

    fn coalesce(&mut self) {
        self.steps.dedup_by(|next, prev| next.1 == prev.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_basic_profile_behaviour() {
        let t = SimTime::from_secs;
        let mut p = NaiveProfile::new(t(0), 10);
        p.hold(t(5), t(15), 4);
        assert_eq!(p.idle_at(t(0)), 10);
        assert_eq!(p.idle_at(t(5)), 6);
        assert_eq!(p.idle_at(t(15)), 10);
        assert_eq!(p.min_idle(t(0), t(20)), 6);
        assert_eq!(
            p.earliest_fit(8, SimDuration::from_secs(10), t(0)),
            Some(t(15))
        );
        p.release(t(5), t(15), 4);
        assert_eq!(p.steps().len(), 1);
    }
}
