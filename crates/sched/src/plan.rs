//! The static planning pass: sequential earliest-start computation.
//!
//! Given a ranked queue and an availability profile, plan where the top
//! `depth` jobs would start if scheduled strictly in priority order, each
//! planned job holding its window. This single routine backs three
//! different paper mechanisms:
//!
//! * reservation creation (`ReservationDepth`),
//! * the *StartNow* / *StartLater* classification (paper Fig 5), and
//! * the what-if delay measurement for dynamic requests
//!   (`ReservationDelayDepth`) — run the same plan with and without the
//!   candidate expansion held, and diff the start times.

use crate::reservation::{PlannedStart, StartKind};
use crate::snapshot::QueuedJob;
use crate::timeline::AvailabilityProfile;
use dynbatch_core::SimTime;

/// Plans starts for the first `depth` jobs of the (already ranked) queue
/// against `profile`, holding each planned window in the profile.
///
/// Jobs whose core request exceeds the profile capacity are skipped (they
/// can never run; the server-side validation normally rejects them first).
///
/// Generic over ownership (`&[QueuedJob]` or `&[&QueuedJob]`) so callers
/// can plan over borrowed queues without cloning.
pub fn plan_starts<J: std::borrow::Borrow<QueuedJob>>(
    profile: &mut AvailabilityProfile,
    ranked: &[J],
    depth: usize,
    now: SimTime,
) -> Vec<PlannedStart> {
    let mut plans = Vec::with_capacity(depth.min(ranked.len()));
    for job in ranked.iter().take(depth) {
        let job = job.borrow();
        // Under the guaranteeing policy an evolving job's footprint is its
        // static cores plus its pre-reserve.
        let width = job.cores + job.reserve_extra;
        let Some(start) = profile.earliest_fit(width, job.walltime, now) else {
            continue;
        };
        let end = start.saturating_add(job.walltime);
        profile.hold(start, end, width);
        plans.push(PlannedStart {
            job: job.id,
            start,
            end,
            cores: width,
            kind: if start == now {
                StartKind::Now
            } else {
                StartKind::Later
            },
        });
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{GroupId, JobId, QueueId, SimDuration, UserId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn qjob(id: u64, cores: u32, walltime_s: u64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(0),
            group: GroupId(0),
            queue: QueueId(0),
            cores,
            walltime: SimDuration::from_secs(walltime_s),
            submit_time: SimTime::ZERO,
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        }
    }

    #[test]
    fn start_now_vs_later() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(100), 6); // a running job
        let ranked = vec![qjob(1, 4, 50), qjob(2, 4, 50)];
        let plans = plan_starts(&mut p, &ranked, 5, t(0));
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].kind, StartKind::Now);
        assert_eq!(plans[0].start, t(0));
        // Job 2 must wait for the running job (job 1 holds the other 4).
        assert_eq!(plans[1].kind, StartKind::Later);
        assert_eq!(plans[1].start, t(50), "job 1 ends at t=50, freeing 4 cores");
    }

    #[test]
    fn sequential_holds_respect_priority() {
        let mut p = AvailabilityProfile::new(t(0), 8);
        let ranked = vec![qjob(1, 8, 100), qjob(2, 8, 100), qjob(3, 8, 100)];
        let plans = plan_starts(&mut p, &ranked, 3, t(0));
        assert_eq!(plans[0].start, t(0));
        assert_eq!(plans[1].start, t(100));
        assert_eq!(plans[2].start, t(200));
    }

    #[test]
    fn depth_limits_planning() {
        let mut p = AvailabilityProfile::new(t(0), 8);
        let ranked = vec![qjob(1, 8, 10), qjob(2, 8, 10), qjob(3, 8, 10)];
        let plans = plan_starts(&mut p, &ranked, 2, t(0));
        assert_eq!(plans.len(), 2);
    }

    #[test]
    fn oversized_jobs_skipped() {
        let mut p = AvailabilityProfile::new(t(0), 8);
        let ranked = vec![qjob(1, 99, 10), qjob(2, 4, 10)];
        let plans = plan_starts(&mut p, &ranked, 5, t(0));
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].job, JobId(2));
    }
}
