//! # dynbatch-sched
//!
//! The Maui-like scheduler with dynamic fairness for evolving jobs — the
//! primary contribution of the reproduced paper.
//!
//! The crate is a pure planning library: [`maui::Maui::iterate`] maps a
//! [`snapshot::Snapshot`] of the cluster/queue state to an
//! [`maui::IterationOutcome`] of decisions, with no I/O, no clock and no
//! cluster mutation. Both the discrete-event simulator (`dynbatch-sim`)
//! and the threaded daemon (`dynbatch-daemon`) drive this exact code.
//!
//! Module map:
//!
//! * [`timeline`] — the availability step function all planning reduces to
//!   (windowed, allocation-free hot paths; see its complexity notes);
//! * [`reference`] — the naive executable specification the timeline is
//!   property-checked and benchmarked against;
//! * [`incremental`] — the delta-maintained base profile carried across
//!   iterations (with its rebuild-equivalence contract);
//! * [`priority`] / [`fairshare`] — classic Maui job prioritisation;
//! * [`usage_history`] — decayed resource-hour accounts behind the
//!   time-aware fairshare mode, budgets and heavy-user DFS penalties;
//! * [`plan`] — sequential earliest-start planning (reservations,
//!   StartNow/StartLater, delay what-ifs);
//! * [`dfs`] — the dynamic-fairness engine (paper §III-D);
//! * [`maui`] — the extended scheduling iteration (paper Algorithm 2);
//! * [`router`] / [`shard`] — within-run sharding: deterministic
//!   work routing, partitioned timelines, cross-shard reservations and
//!   the round-synchronised worker pool behind `shards > 1`;
//! * [`snapshot`] / [`reservation`] — the value types crossing the
//!   scheduler boundary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dfs;
pub mod fairshare;
pub mod incremental;
pub mod maui;
pub mod plan;
pub mod priority;
pub mod reference;
pub mod reservation;
pub mod router;
pub mod shard;
pub mod snapshot;
pub mod timeline;
pub mod usage_history;

pub use dfs::{DelayCharge, DfsEngine, DfsReject, DfsVerdict};
pub use fairshare::FairshareTracker;
pub use incremental::{
    profile_from_running, DeltaLog, IncrementalTimeline, ProfileDelta, TimelineStats,
};
pub use maui::{mold_fit, DynDecision, IterationOutcome, Maui, ResizeDecision, StartDecision};
pub use plan::plan_starts;
pub use priority::{priority_of, rank_jobs, FairnessView, Priority};
pub use reservation::{PlannedStart, Reservation, StartKind};
pub use router::{MultiShardHold, ShardRouter, StealQueues};
pub use shard::{with_round_pool, ShardCommitError, ShardLayout, ShardedTimeline};
pub use snapshot::{DynRequest, QueuedJob, RunningJob, Snapshot};
pub use timeline::{planned_end, AvailabilityProfile, OVERDUE_GRACE};
pub use usage_history::{DecayedAccount, UsageHistory, UsageSnapshot};
