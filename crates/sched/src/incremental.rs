//! Incremental maintenance of the base availability profile.
//!
//! Every `Maui::iterate` needs the availability profile of the running
//! workload — each running job holding its cores until its (grace-clamped)
//! walltime end. Rebuilding it from the full running set costs O(running
//! jobs) per iteration even when nothing changed since the last cycle;
//! this module maintains it *incrementally* instead: the resource manager
//! records a [`ProfileDelta`] at every running-set mutation (job start,
//! finish, resize, preempt, node fail/repair), drains them into the
//! [`DeltaLog`] of the next [`Snapshot`], and [`IncrementalTimeline`]
//! applies only those deltas and re-anchors the profile origin to `now`
//! ([`AvailabilityProfile::advance_origin`]).
//!
//! # The contract
//!
//! * **Delta kinds** — `Started` (a job began holding cores), `Finished`
//!   (it stopped: completion, kill, preemption or node failure),
//!   `Resized` (its held width changed: dynamic grant, malleable resize,
//!   `tm_dynfree`), `CapacityChanged` (node failed or repaired; the whole
//!   profile is invalid).
//! * **Re-anchor rule** — on advance, the origin moves forward to `now`
//!   and exactly the overdue holds (effective end `< now` + grace) are
//!   re-clamped to `now + grace`, preserving [`planned_end`] semantics.
//!   Because `now` is monotone, a re-clamped end never moves backwards.
//! * **Equivalence invariant** — after every advance the incremental
//!   profile is *byte-equal* to [`profile_from_running`] over the
//!   snapshot's running set. `AvailabilityProfile`'s canonical form
//!   (coalesced, first step at origin) is unique, so byte equality is
//!   functional equality. `Maui` asserts this in debug builds and under
//!   its test-mode knob; `tests/timeline_incremental.rs` fuzzes it.
//!
//! Continuity is tracked by epochs: the server stamps each drained log
//! with the epoch of the previous snapshot (`base_epoch`) and its own
//! (`epoch`). A mismatch — a missed snapshot, a fresh scheduler, a
//! capacity change, or a snapshot built without a log — falls back to a
//! full rebuild, so correctness never depends on the fast path being
//! taken.

use crate::snapshot::{RunningJob, Snapshot};
use crate::timeline::{planned_end, AvailabilityProfile};
use dynbatch_core::{JobId, SimTime};
use std::collections::{BTreeSet, HashMap};

/// One running-set mutation, as observed by the resource manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileDelta {
    /// A job began holding cores (queue start, backfill start, moldable
    /// start — any path that allocates).
    Started {
        /// The job.
        job: JobId,
        /// Cores the planner must book: allocation plus any guaranteeing
        /// pre-reserve (`cores + reserved_extra`).
        held_cores: u32,
        /// The job's walltime end (the planner clamps it per
        /// [`planned_end`]).
        walltime_end: SimTime,
    },
    /// A job stopped holding cores: finished, killed, preempted, or lost
    /// to a node failure.
    Finished {
        /// The job.
        job: JobId,
    },
    /// A job's held width changed (dynamic grant, malleable grow/shrink,
    /// `tm_dynfree`). Carries the *new total* held width, not a diff, so
    /// a lost or duplicated delta cannot silently compound.
    Resized {
        /// The job.
        job: JobId,
        /// The new `cores + reserved_extra`.
        held_cores: u32,
    },
    /// The machine width changed (node failed or repaired). The profile
    /// capacity is stale; the timeline must rebuild.
    CapacityChanged,
}

/// The running-set mutations since the previous snapshot, stamped for
/// continuity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaLog {
    /// Epoch of the snapshot these deltas extend. The timeline only
    /// applies the log if this matches the epoch it last advanced to.
    pub base_epoch: u64,
    /// Epoch of the snapshot carrying this log.
    pub epoch: u64,
    /// The mutations, in occurrence order.
    pub deltas: Vec<ProfileDelta>,
}

/// Counters describing how the timeline has been maintained, for the
/// bench harness and for asserting the fast path is actually taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineStats {
    /// Full rebuilds from the running set (continuity lost, capacity
    /// changed, or no delta log supplied).
    pub rebuilds: u64,
    /// Advances served by the delta fast path.
    pub delta_batches: u64,
    /// Individual deltas applied on the fast path.
    pub deltas_applied: u64,
}

/// A tracked hold: what the profile currently books for one running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeldJob {
    /// Booked width (`cores + reserved_extra`).
    cores: u32,
    /// The job's true walltime end (re-clamping needs it).
    walltime_end: SimTime,
    /// The end instant currently booked in the profile
    /// (`planned_end(now_at_last_touch, walltime_end)`).
    effective_end: SimTime,
}

/// The persistent, delta-maintained base availability profile.
#[derive(Debug, Clone)]
pub struct IncrementalTimeline {
    profile: AvailabilityProfile,
    /// Current holds by job.
    held: HashMap<JobId, HeldJob>,
    /// Holds ordered by booked end, so re-clamping overdue jobs touches
    /// exactly the overdue prefix instead of scanning every hold.
    ends: BTreeSet<(SimTime, JobId)>,
    /// Epoch of the snapshot last advanced to (`None` until the first
    /// advance, and after [`IncrementalTimeline::invalidate`]).
    epoch: Option<u64>,
    /// Bumped on every advance; consumers caching plans derived from the
    /// profile can tag them with this to self-invalidate.
    revision: u64,
    stats: TimelineStats,
}

impl Default for IncrementalTimeline {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalTimeline {
    /// An empty timeline; the first [`IncrementalTimeline::advance`]
    /// always rebuilds.
    pub fn new() -> Self {
        IncrementalTimeline {
            profile: AvailabilityProfile::new(SimTime::ZERO, 0),
            held: HashMap::new(),
            ends: BTreeSet::new(),
            epoch: None,
            revision: 0,
            stats: TimelineStats::default(),
        }
    }

    /// The maintained profile, anchored at the `now` of the last advance.
    pub fn profile(&self) -> &AvailabilityProfile {
        &self.profile
    }

    /// Maintenance counters.
    pub fn stats(&self) -> TimelineStats {
        self.stats
    }

    /// Monotone counter distinguishing profile states across advances.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Forgets continuity: the next advance rebuilds unconditionally.
    pub fn invalidate(&mut self) {
        self.epoch = None;
    }

    /// Brings the profile up to `snap`: the delta fast path when the
    /// snapshot's log extends the epoch last advanced to, a full rebuild
    /// otherwise. Either way the result equals
    /// `profile_from_running(snap.now, snap.total_cores, &snap.running)`.
    pub fn advance(&mut self, snap: &Snapshot) -> &AvailabilityProfile {
        let now = snap.now;
        let continuous = match (&snap.deltas, self.epoch) {
            (Some(log), Some(epoch)) => {
                log.base_epoch == epoch
                    && snap.total_cores == self.profile.capacity()
                    && now >= self.profile.origin()
                    && !log
                        .deltas
                        .iter()
                        .any(|d| matches!(d, ProfileDelta::CapacityChanged))
            }
            _ => false,
        };
        let applied = continuous && {
            let log = snap.deltas.as_ref().expect("continuity implies a log");
            self.apply(now, &log.deltas)
        };
        if applied {
            self.stats.delta_batches += 1;
        } else {
            self.rebuild(now, snap.total_cores, &snap.running);
            self.stats.rebuilds += 1;
        }
        self.epoch = snap.deltas.as_ref().map(|log| log.epoch);
        self.revision += 1;
        &self.profile
    }

    /// The fast path: re-anchor, re-clamp overdue holds, replay `deltas`.
    /// Returns `false` on an inconsistent stream (unknown job, duplicate
    /// start) — the caller rebuilds, which discards any partial mutation.
    fn apply(&mut self, now: SimTime, deltas: &[ProfileDelta]) -> bool {
        self.reanchor(now);
        self.apply_ops(now, deltas)
    }

    /// Sharded-mode entry: moves the profile origin to `now` and
    /// re-clamps overdue holds, without applying any deltas. A sharded
    /// timeline re-anchors every shard once per advance, then routes each
    /// global delta to per-shard [`IncrementalTimeline::apply_ops`] calls;
    /// the serial fast path is `reanchor` + `apply_ops` in one step.
    ///
    /// # Panics
    /// If `now` precedes the current origin (time may only advance).
    pub fn reanchor(&mut self, now: SimTime) {
        self.profile.advance_origin(now);
        self.reclamp_overdue(now);
    }

    /// Sharded-mode entry: replays `deltas` against a profile already
    /// anchored at `now` (see [`IncrementalTimeline::reanchor`]). Returns
    /// `false` on an inconsistent stream (unknown job, duplicate start,
    /// in-stream capacity change) — the timeline state is then torn and
    /// the caller must rebuild before the next use.
    pub fn apply_ops(&mut self, now: SimTime, deltas: &[ProfileDelta]) -> bool {
        debug_assert_eq!(
            now,
            self.profile.origin(),
            "apply_ops requires a profile re-anchored at now"
        );
        for delta in deltas {
            match *delta {
                ProfileDelta::Started {
                    job,
                    held_cores,
                    walltime_end,
                } => {
                    if self.held.contains_key(&job) {
                        return false;
                    }
                    let end = planned_end(now, walltime_end);
                    self.profile.hold(now, end, held_cores);
                    self.held.insert(
                        job,
                        HeldJob {
                            cores: held_cores,
                            walltime_end,
                            effective_end: end,
                        },
                    );
                    self.ends.insert((end, job));
                }
                ProfileDelta::Finished { job } => {
                    let Some(h) = self.held.remove(&job) else {
                        return false;
                    };
                    self.ends.remove(&(h.effective_end, job));
                    self.profile.release(now, h.effective_end, h.cores);
                }
                ProfileDelta::Resized { job, held_cores } => {
                    let Some(h) = self.held.get_mut(&job) else {
                        return false;
                    };
                    if held_cores > h.cores {
                        self.profile
                            .hold(now, h.effective_end, held_cores - h.cores);
                    } else if held_cores < h.cores {
                        self.profile
                            .release(now, h.effective_end, h.cores - held_cores);
                    }
                    h.cores = held_cores;
                }
                // Filtered out before `apply` is entered; defensive.
                ProfileDelta::CapacityChanged => return false,
            }
            self.stats.deltas_applied += 1;
        }
        true
    }

    /// Re-clamps every hold whose booked end predates `now` + grace: pops
    /// the overdue prefix of `ends` and extends each hold to
    /// `planned_end(now, walltime_end)`. Monotone `now` guarantees the
    /// new end is never earlier than the booked one, so the extension is
    /// a pure `hold` over the tail.
    fn reclamp_overdue(&mut self, now: SimTime) {
        let cutoff = planned_end(now, SimTime::ZERO); // now + grace
        while let Some(&(end, job)) = self.ends.iter().next() {
            if end >= cutoff {
                break;
            }
            self.ends.remove(&(end, job));
            let h = self.held.get_mut(&job).expect("`ends` mirrors `held`");
            let new_end = planned_end(now, h.walltime_end);
            debug_assert!(new_end >= end, "re-clamped end moved backwards");
            self.profile.hold(end.max(now), new_end, h.cores);
            h.effective_end = new_end;
            self.ends.insert((new_end, job));
        }
    }

    /// The slow path: discard all state and rebuild from the running set.
    fn rebuild(&mut self, now: SimTime, total_cores: u32, running: &[RunningJob]) {
        self.profile.reset(now, total_cores);
        self.held.clear();
        self.ends.clear();
        for r in running {
            self.book(now, r.id, r.cores + r.reserved_extra, r.walltime_end);
        }
    }

    /// Sharded-mode slow path: discard all state and rebuild this
    /// (sub-)timeline of `capacity` cores from explicit
    /// `(job, held_cores, walltime_end)` parts — the slice of each running
    /// job a shard router placed here. Continuity bookkeeping (epochs,
    /// revision) is the caller's business, as with
    /// [`IncrementalTimeline::apply_ops`].
    pub fn rebuild_parts(&mut self, now: SimTime, capacity: u32, parts: &[(JobId, u32, SimTime)]) {
        self.profile.reset(now, capacity);
        self.held.clear();
        self.ends.clear();
        for &(job, cores, walltime_end) in parts {
            self.book(now, job, cores, walltime_end);
        }
    }

    /// Books one hold during a rebuild.
    fn book(&mut self, now: SimTime, job: JobId, cores: u32, walltime_end: SimTime) {
        let end = planned_end(now, walltime_end);
        self.profile.hold(now, end, cores);
        self.held.insert(
            job,
            HeldJob {
                cores,
                walltime_end,
                effective_end: end,
            },
        );
        self.ends.insert((end, job));
    }
}

/// Builds the availability profile of the running workload from scratch:
/// each running job holds `cores + reserved_extra` until
/// [`planned_end`]`(now, walltime_end)`. This is the executable
/// specification the incremental path is asserted byte-equal to.
pub fn profile_from_running(
    now: SimTime,
    total_cores: u32,
    running: &[RunningJob],
) -> AvailabilityProfile {
    let mut p = AvailabilityProfile::new(now, total_cores);
    rebuild_into(&mut p, now, total_cores, running);
    p
}

/// [`profile_from_running`] into an existing buffer (allocation-recycling
/// variant for per-iteration use).
pub fn rebuild_into(
    p: &mut AvailabilityProfile,
    now: SimTime,
    total_cores: u32,
    running: &[RunningJob],
) {
    p.reset(now, total_cores);
    for r in running {
        p.hold(
            now,
            planned_end(now, r.walltime_end),
            r.cores + r.reserved_extra,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::testkit::{check, TestRng};
    use dynbatch_core::{GroupId, SimDuration, UserId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn running(id: u64, cores: u32, end: SimTime) -> RunningJob {
        RunningJob {
            id: JobId(id),
            user: UserId(0),
            group: GroupId(0),
            cores,
            start_time: SimTime::ZERO,
            walltime_end: end,
            backfilled: false,
            reserved_extra: 0,
            malleable: None,
        }
    }

    fn snap(
        now: SimTime,
        total: u32,
        running: Vec<RunningJob>,
        deltas: Option<DeltaLog>,
    ) -> Snapshot {
        Snapshot {
            now,
            total_cores: total,
            running,
            deltas,
            ..Default::default()
        }
    }

    #[test]
    fn first_advance_rebuilds_then_deltas_apply() {
        let mut tl = IncrementalTimeline::new();
        let jobs = vec![running(1, 4, t(100)), running(2, 2, t(50))];
        let log0 = DeltaLog {
            base_epoch: 0,
            epoch: 1,
            deltas: vec![],
        };
        tl.advance(&snap(t(0), 8, jobs.clone(), Some(log0)));
        assert_eq!(tl.stats().rebuilds, 1, "no continuity on first advance");
        assert_eq!(*tl.profile(), profile_from_running(t(0), 8, &jobs));

        // Job 2 finishes, job 3 starts; continuity holds → fast path.
        let jobs2 = vec![running(1, 4, t(100)), running(3, 3, t(80))];
        let log1 = DeltaLog {
            base_epoch: 1,
            epoch: 2,
            deltas: vec![
                ProfileDelta::Finished { job: JobId(2) },
                ProfileDelta::Started {
                    job: JobId(3),
                    held_cores: 3,
                    walltime_end: t(80),
                },
            ],
        };
        tl.advance(&snap(t(10), 8, jobs2.clone(), Some(log1)));
        assert_eq!(tl.stats().rebuilds, 1);
        assert_eq!(tl.stats().delta_batches, 1);
        assert_eq!(tl.stats().deltas_applied, 2);
        assert_eq!(*tl.profile(), profile_from_running(t(10), 8, &jobs2));
    }

    #[test]
    fn epoch_gap_and_capacity_change_force_rebuild() {
        let mut tl = IncrementalTimeline::new();
        let jobs = vec![running(1, 4, t(100))];
        tl.advance(&snap(
            t(0),
            8,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 0,
                epoch: 1,
                deltas: vec![],
            }),
        ));
        // base_epoch 5 ≠ stored epoch 1: a missed snapshot.
        tl.advance(&snap(
            t(5),
            8,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 5,
                epoch: 6,
                deltas: vec![],
            }),
        ));
        assert_eq!(tl.stats().rebuilds, 2);
        // CapacityChanged in-stream: rebuild at the new width.
        tl.advance(&snap(
            t(6),
            6,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 6,
                epoch: 7,
                deltas: vec![ProfileDelta::CapacityChanged],
            }),
        ));
        assert_eq!(tl.stats().rebuilds, 3);
        assert_eq!(*tl.profile(), profile_from_running(t(6), 6, &jobs));
        // Missing log (plain snapshot): rebuild and drop continuity.
        tl.advance(&snap(t(7), 6, jobs.clone(), None));
        assert_eq!(tl.stats().rebuilds, 4);
        tl.advance(&snap(
            t(8),
            6,
            jobs,
            Some(DeltaLog {
                base_epoch: 7,
                epoch: 8,
                deltas: vec![],
            }),
        ));
        assert_eq!(tl.stats().rebuilds, 5, "continuity was lost at epoch 7");
    }

    #[test]
    fn inconsistent_stream_falls_back_to_rebuild() {
        let mut tl = IncrementalTimeline::new();
        let jobs = vec![running(1, 4, t(100))];
        tl.advance(&snap(
            t(0),
            8,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 0,
                epoch: 1,
                deltas: vec![],
            }),
        ));
        // Finished for a job the timeline never saw started.
        tl.advance(&snap(
            t(1),
            8,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 1,
                epoch: 2,
                deltas: vec![ProfileDelta::Finished { job: JobId(99) }],
            }),
        ));
        assert_eq!(tl.stats().rebuilds, 2);
        assert_eq!(*tl.profile(), profile_from_running(t(1), 8, &jobs));
    }

    #[test]
    fn overdue_holds_are_reclamped_on_advance() {
        let mut tl = IncrementalTimeline::new();
        // Job ends at t=5 but is still running at t=10: the rebuild books
        // it to 10 s + 1 ms, and so must the fast path at t=20.
        let jobs = vec![running(1, 4, t(5))];
        tl.advance(&snap(
            t(10),
            8,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 0,
                epoch: 1,
                deltas: vec![],
            }),
        ));
        tl.advance(&snap(
            t(20),
            8,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 1,
                epoch: 2,
                deltas: vec![],
            }),
        ));
        assert_eq!(tl.stats().delta_batches, 1);
        assert_eq!(*tl.profile(), profile_from_running(t(20), 8, &jobs));
        // The overdue job finally finishes; its (re-clamped) hold must
        // release cleanly on the fast path.
        tl.advance(&snap(
            t(30),
            8,
            vec![],
            Some(DeltaLog {
                base_epoch: 2,
                epoch: 3,
                deltas: vec![ProfileDelta::Finished { job: JobId(1) }],
            }),
        ));
        assert_eq!(tl.stats().delta_batches, 2);
        assert_eq!(*tl.profile(), profile_from_running(t(30), 8, &[]));
    }

    /// Randomised model check: a long stream of start/finish/resize
    /// events (including overdue jobs and occasional continuity breaks)
    /// keeps the incremental profile byte-equal to the rebuild.
    #[test]
    fn random_delta_streams_match_rebuild() {
        check(128, 0x1CC0, run_random_stream);
    }

    fn run_random_stream(rng: &mut TestRng) {
        let total = 16 + rng.range_u32(0, 48);
        let mut tl = IncrementalTimeline::new();
        let mut live: Vec<RunningJob> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut next_id = 1u64;
        let mut epoch = 0u64;
        let steps = 40 + rng.range_usize(0, 40);
        for _ in 0..steps {
            now = now.saturating_add(SimDuration::from_millis(rng.below(5_000)));
            let mut deltas = Vec::new();
            let events = rng.range_usize(0, 4);
            for _ in 0..events {
                let held: u32 = live.iter().map(|r| r.cores).sum();
                match rng.below(10) {
                    // Start a job if capacity allows.
                    0..=4 => {
                        let free = total - held.min(total);
                        if free == 0 {
                            continue;
                        }
                        let cores = 1 + rng.range_u32(0, free);
                        // Sometimes already overdue at start.
                        let end = if rng.chance(0.15) {
                            SimTime::from_millis(now.as_millis().saturating_sub(rng.below(10_000)))
                        } else {
                            now.saturating_add(SimDuration::from_millis(1 + rng.below(60_000)))
                        };
                        let id = JobId(next_id);
                        next_id += 1;
                        live.push(running(id.0, cores, end));
                        deltas.push(ProfileDelta::Started {
                            job: id,
                            held_cores: cores,
                            walltime_end: end,
                        });
                    }
                    // Finish a random live job.
                    5..=7 => {
                        if live.is_empty() {
                            continue;
                        }
                        let i = rng.range_usize(0, live.len());
                        let gone = live.swap_remove(i);
                        deltas.push(ProfileDelta::Finished { job: gone.id });
                    }
                    // Resize a random live job within capacity.
                    _ => {
                        if live.is_empty() {
                            continue;
                        }
                        let i = rng.range_usize(0, live.len());
                        let headroom = total - held.min(total);
                        let new = 1 + rng.range_u32(0, live[i].cores + headroom);
                        live[i].cores = new;
                        deltas.push(ProfileDelta::Resized {
                            job: live[i].id,
                            held_cores: new,
                        });
                    }
                }
            }
            // Occasionally drop the log entirely (plain snapshot).
            let log = if rng.chance(0.1) {
                None
            } else {
                let base = epoch;
                epoch += 1;
                Some(DeltaLog {
                    base_epoch: base,
                    epoch,
                    deltas,
                })
            };
            tl.advance(&snap(now, total, live.clone(), log));
            assert_eq!(
                *tl.profile(),
                profile_from_running(now, total, &live),
                "divergence at now={now}"
            );
        }
        // The fast path must actually have been exercised.
        assert!(tl.stats().delta_batches > 0 || steps == 0);
    }
}
