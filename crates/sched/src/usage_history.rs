//! Time-aware fairness: decayed resource-hour accounts.
//!
//! The static [`crate::fairshare`] tracker retains a handful of fixed
//! windows and forgets everything older. This module implements the
//! modern alternative (KAI-Scheduler's time-aware fairness, Shockwave's
//! long-horizon accounting): every closed usage segment charges an
//! exponentially-decayed account, so
//!
//! ```text
//! usage(now) = Σ charge_i · 2^−(now − t_i)/half_life
//! ```
//!
//! The sum is never materialised. Each account keeps one running
//! accumulator `acc` valued *as of* its last charge instant, and decays it
//! lazily: charging at `t ≥ last` first multiplies `acc` by
//! `2^−(t − last)/half_life`, then adds the new charge — O(1) per charge,
//! O(1) per read, no window vectors, no rotation loops.
//!
//! Accounts are kept per user and per submission queue (see
//! [`dynbatch_core::QueueId`]), plus one grand total. Charges are in
//! **core-milliseconds** (exactly what the server's segment ledger
//! produces); reads convert to decayed core-hours or to a
//! cluster-capacity-normalized *share*: a user holding a constant `c`
//! cores forever converges to `acc = c · half_life / ln 2`, so
//!
//! ```text
//! share = acc_ms · ln 2 / (half_life_ms · capacity_cores)
//! ```
//!
//! equals `c / capacity` at steady state — a month at 10 % of the cluster
//! and a day at 100 % compare sensibly.
//!
//! Crash durability: the accumulators are `f64`s mutated by a replayable
//! sequence of charges. The server snapshots them bit-exactly
//! ([`UsageHistory::to_json`] stores `f64::to_bits`), and journal replay
//! re-issues the identical charge sequence, so recovered state is
//! byte-identical to the uncrashed run.

use dynbatch_core::json::Json;
use dynbatch_core::{QueueId, SimDuration, SimTime, UserId};
use std::collections::BTreeMap;

/// Milliseconds per core-hour, for converting ledger charges to hours.
const MS_PER_HOUR: f64 = 3_600_000.0;

/// One exponentially-decayed accumulator: `acc_ms` core-milliseconds
/// valued as of instant `last`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayedAccount {
    /// Decayed core-milliseconds, valued at `last`.
    pub acc_ms: f64,
    /// Instant the accumulator was last brought forward to.
    pub last: SimTime,
}

impl DecayedAccount {
    /// An empty account anchored at time zero.
    pub const ZERO: DecayedAccount = DecayedAccount {
        acc_ms: 0.0,
        last: SimTime::ZERO,
    };

    /// Charges `amount_ms` core-milliseconds at instant `at`.
    ///
    /// Charges at or before `last` are added undecayed (the server's
    /// segment ledger closes segments in time order, so this only happens
    /// for same-instant charges, where `2⁰ = 1` anyway — skipping the
    /// `exp2` keeps the arithmetic bit-stable under replay).
    pub fn charge(&mut self, amount_ms: f64, at: SimTime, half_life: SimDuration) {
        if at > self.last {
            self.acc_ms *= decay_factor(self.last, at, half_life);
            self.last = at;
        }
        self.acc_ms += amount_ms;
    }

    /// The decayed value at `now`, without mutating the account.
    /// Instants before `last` read the accumulator as-is.
    pub fn decayed_ms(&self, now: SimTime, half_life: SimDuration) -> f64 {
        if now > self.last {
            self.acc_ms * decay_factor(self.last, now, half_life)
        } else {
            self.acc_ms
        }
    }
}

/// `2^−(to − from)/half_life`; a zero half-life disables decay (factor 1).
fn decay_factor(from: SimTime, to: SimTime, half_life: SimDuration) -> f64 {
    if half_life.is_zero() {
        return 1.0;
    }
    let dt_ms = (to - from).as_millis() as f64;
    (-dt_ms / half_life.as_millis() as f64).exp2()
}

/// Decayed per-user and per-queue resource-hour accounts, fed
/// segment-by-segment from the server's journalled usage ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageHistory {
    half_life: SimDuration,
    capacity_cores: u64,
    users: BTreeMap<UserId, DecayedAccount>,
    queues: BTreeMap<QueueId, DecayedAccount>,
    total: DecayedAccount,
}

impl UsageHistory {
    /// An empty history with the given decay half-life and cluster
    /// capacity (total cores — the normalization denominator).
    pub fn new(half_life: SimDuration, capacity_cores: u64) -> Self {
        UsageHistory {
            half_life,
            capacity_cores,
            users: BTreeMap::new(),
            queues: BTreeMap::new(),
            total: DecayedAccount::ZERO,
        }
    }

    /// The configured half-life.
    pub fn half_life(&self) -> SimDuration {
        self.half_life
    }

    /// Replaces the half-life (server reconfiguration before any charges).
    pub fn set_half_life(&mut self, half_life: SimDuration) {
        self.half_life = half_life;
    }

    /// The normalization capacity in cores.
    pub fn capacity_cores(&self) -> u64 {
        self.capacity_cores
    }

    /// Replaces the normalization capacity (cluster resize / reset).
    pub fn set_capacity_cores(&mut self, capacity_cores: u64) {
        self.capacity_cores = capacity_cores;
    }

    /// True when no charge has ever landed.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.queues.is_empty()
    }

    /// Charges a closed usage segment of `core_ms` core-milliseconds to
    /// `user` / `queue`, attributed to the segment-close instant `at`.
    pub fn charge(&mut self, user: UserId, queue: QueueId, core_ms: u64, at: SimTime) {
        let amount = core_ms as f64;
        let h = self.half_life;
        self.users
            .entry(user)
            .or_insert(DecayedAccount::ZERO)
            .charge(amount, at, h);
        self.queues
            .entry(queue)
            .or_insert(DecayedAccount::ZERO)
            .charge(amount, at, h);
        self.total.charge(amount, at, h);
    }

    /// The user's decayed core-hours at `now`.
    pub fn user_core_hours(&self, user: UserId, now: SimTime) -> f64 {
        self.users
            .get(&user)
            .map_or(0.0, |a| a.decayed_ms(now, self.half_life) / MS_PER_HOUR)
    }

    /// The queue's decayed core-hours at `now`.
    pub fn queue_core_hours(&self, queue: QueueId, now: SimTime) -> f64 {
        self.queues
            .get(&queue)
            .map_or(0.0, |a| a.decayed_ms(now, self.half_life) / MS_PER_HOUR)
    }

    /// The user's capacity-normalized share at `now`: 0 for an idle user,
    /// ≈ `c / capacity` for a user holding `c` cores at steady state.
    pub fn user_share(&self, user: UserId, now: SimTime) -> f64 {
        self.users
            .get(&user)
            .map_or(0.0, |a| self.normalize(a.decayed_ms(now, self.half_life)))
    }

    /// Converts decayed core-milliseconds into a capacity share.
    fn normalize(&self, decayed_ms: f64) -> f64 {
        if self.capacity_cores == 0 || self.half_life.is_zero() {
            return 0.0;
        }
        decayed_ms * std::f64::consts::LN_2
            / (self.half_life.as_millis() as f64 * self.capacity_cores as f64)
    }

    /// An immutable point-in-time view for the scheduler: every account
    /// decayed to `now`, sorted by ID for binary-search lookups and
    /// deterministic iteration.
    pub fn snapshot(&self, now: SimTime) -> UsageSnapshot {
        let h = self.half_life;
        UsageSnapshot {
            now,
            capacity_cores: self.capacity_cores,
            half_life: h,
            users: self
                .users
                .iter()
                .map(|(&u, a)| (u, a.decayed_ms(now, h)))
                .collect(),
            queues: self
                .queues
                .iter()
                .map(|(&q, a)| (q, a.decayed_ms(now, h)))
                .collect(),
            total_ms: self.total.decayed_ms(now, h),
        }
    }

    /// A compact deterministic fingerprint of the raw accumulator state
    /// (bit patterns, not rounded decimals) — crash tests compare this
    /// across recovery boundaries.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "h={} cap={} total={:x}@{}",
            self.half_life.as_millis(),
            self.capacity_cores,
            self.total.acc_ms.to_bits(),
            self.total.last.as_millis()
        );
        for (u, a) in &self.users {
            let _ = write!(
                s,
                " u{}={:x}@{}",
                u.0,
                a.acc_ms.to_bits(),
                a.last.as_millis()
            );
        }
        for (q, a) in &self.queues {
            let _ = write!(
                s,
                " q{}={:x}@{}",
                q.0,
                a.acc_ms.to_bits(),
                a.last.as_millis()
            );
        }
        s
    }

    /// Serialises the accumulators bit-exactly (`f64::to_bits`) for the
    /// server snapshot image.
    pub fn to_json(&self) -> Json {
        let accounts = |it: Vec<(u64, &DecayedAccount)>| {
            Json::Arr(
                it.into_iter()
                    .map(|(id, a)| {
                        Json::Arr(vec![
                            Json::UInt(id),
                            Json::UInt(a.acc_ms.to_bits()),
                            Json::UInt(a.last.as_millis()),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj(vec![
            ("half_life_ms", Json::UInt(self.half_life.as_millis())),
            ("capacity_cores", Json::UInt(self.capacity_cores)),
            (
                "users",
                accounts(self.users.iter().map(|(u, a)| (u.0 as u64, a)).collect()),
            ),
            (
                "queues",
                accounts(self.queues.iter().map(|(q, a)| (q.0 as u64, a)).collect()),
            ),
            ("total_bits", Json::UInt(self.total.acc_ms.to_bits())),
            ("total_last_ms", Json::UInt(self.total.last.as_millis())),
        ])
    }

    /// Parses a history written by [`UsageHistory::to_json`], restoring
    /// the exact accumulator bit patterns.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let u64_field = |key: &str| -> Result<u64, String> {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| format!("`{key}` is not an integer"))
        };
        let accounts = |key: &str| -> Result<Vec<(u64, DecayedAccount)>, String> {
            v.req(key)?
                .as_arr()
                .ok_or_else(|| format!("`{key}` is not an array"))?
                .iter()
                .map(|e| {
                    let t = e.as_arr().ok_or("usage account is not an array")?;
                    if t.len() != 3 {
                        return Err("usage account is not a 3-tuple".into());
                    }
                    let num = |j: &Json| j.as_u64().ok_or("usage account field is not an integer");
                    Ok((
                        num(&t[0])?,
                        DecayedAccount {
                            acc_ms: f64::from_bits(num(&t[1])?),
                            last: SimTime::from_millis(num(&t[2])?),
                        },
                    ))
                })
                .collect()
        };
        Ok(UsageHistory {
            half_life: SimDuration::from_millis(u64_field("half_life_ms")?),
            capacity_cores: u64_field("capacity_cores")?,
            users: accounts("users")?
                .into_iter()
                .map(|(id, a)| (UserId(id as u32), a))
                .collect(),
            queues: accounts("queues")?
                .into_iter()
                .map(|(id, a)| (QueueId(id as u32), a))
                .collect(),
            total: DecayedAccount {
                acc_ms: f64::from_bits(u64_field("total_bits")?),
                last: SimTime::from_millis(u64_field("total_last_ms")?),
            },
        })
    }
}

/// A point-in-time, decayed view of a [`UsageHistory`] — the value the
/// scheduler consumes. All accounts are valued at `now`; lookups are
/// binary searches over ID-sorted vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageSnapshot {
    /// Valuation instant.
    pub now: SimTime,
    /// Normalization capacity in cores.
    pub capacity_cores: u64,
    /// Decay half-life the accounts were accumulated under.
    pub half_life: SimDuration,
    /// Per-user decayed core-milliseconds, sorted by user ID.
    pub users: Vec<(UserId, f64)>,
    /// Per-queue decayed core-milliseconds, sorted by queue ID.
    pub queues: Vec<(QueueId, f64)>,
    /// Grand-total decayed core-milliseconds.
    pub total_ms: f64,
}

impl UsageSnapshot {
    /// An empty snapshot (no usage recorded).
    pub fn empty(now: SimTime, capacity_cores: u64, half_life: SimDuration) -> Self {
        UsageSnapshot {
            now,
            capacity_cores,
            half_life,
            users: Vec::new(),
            queues: Vec::new(),
            total_ms: 0.0,
        }
    }

    fn user_ms(&self, user: UserId) -> f64 {
        match self.users.binary_search_by_key(&user, |&(u, _)| u) {
            Ok(i) => self.users[i].1,
            Err(_) => 0.0,
        }
    }

    fn queue_ms(&self, queue: QueueId) -> f64 {
        match self.queues.binary_search_by_key(&queue, |&(q, _)| q) {
            Ok(i) => self.queues[i].1,
            Err(_) => 0.0,
        }
    }

    /// Converts decayed core-milliseconds into a capacity share.
    fn normalize(&self, decayed_ms: f64) -> f64 {
        if self.capacity_cores == 0 || self.half_life.is_zero() {
            return 0.0;
        }
        decayed_ms * std::f64::consts::LN_2
            / (self.half_life.as_millis() as f64 * self.capacity_cores as f64)
    }

    /// The user's capacity-normalized decayed share.
    pub fn user_share(&self, user: UserId) -> f64 {
        self.normalize(self.user_ms(user))
    }

    /// The user's decayed core-hours.
    pub fn user_core_hours(&self, user: UserId) -> f64 {
        self.user_ms(user) / MS_PER_HOUR
    }

    /// The queue's decayed core-hours.
    pub fn queue_core_hours(&self, queue: QueueId) -> f64 {
        self.queue_ms(queue) / MS_PER_HOUR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: SimDuration = SimDuration::from_hours(24);

    fn t(hours: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_hours(hours)
    }

    #[test]
    fn single_charge_halves_per_half_life() {
        let mut hist = UsageHistory::new(H, 100);
        hist.charge(UserId(0), QueueId(0), 3_600_000, t(0)); // 1 core-hour
        assert!((hist.user_core_hours(UserId(0), t(0)) - 1.0).abs() < 1e-12);
        assert!((hist.user_core_hours(UserId(0), t(24)) - 0.5).abs() < 1e-12);
        assert!((hist.user_core_hours(UserId(0), t(48)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lazy_accumulator_matches_explicit_sum() {
        // Fold three charges through the O(1) accumulator and compare with
        // the definitional sum Σ charge_i · 2^−(now−t_i)/half_life.
        let mut hist = UsageHistory::new(H, 100);
        let charges = [(3_600_000u64, t(0)), (1_800_000, t(10)), (7_200_000, t(30))];
        for &(ms, at) in &charges {
            hist.charge(UserId(1), QueueId(2), ms, at);
        }
        let now = t(50);
        let expect: f64 = charges
            .iter()
            .map(|&(ms, at)| {
                ms as f64 * (-((now - at).as_millis() as f64) / H.as_millis() as f64).exp2()
            })
            .sum();
        let got = hist.user_core_hours(UserId(1), now) * MS_PER_HOUR;
        assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
        // Queue and total track the same charges.
        let q = hist.queue_core_hours(QueueId(2), now) * MS_PER_HOUR;
        assert!((q - expect).abs() < 1e-6);
    }

    #[test]
    fn steady_state_share_approaches_core_fraction() {
        // A user holding 10 of 100 cores, charged hourly for a long time,
        // converges to share ≈ 0.10.
        let mut hist = UsageHistory::new(H, 100);
        for hour in 0..24 * 30 {
            hist.charge(UserId(0), QueueId(0), 10 * 3_600_000, t(hour));
        }
        let share = hist.user_share(UserId(0), t(24 * 30));
        assert!((share - 0.10).abs() < 0.01, "share = {share}");
    }

    #[test]
    fn normalization_compares_long_light_vs_short_heavy() {
        // A month at 10 % of the cluster outweighs a single day at 100 %
        // once the day is a week old, under a 24 h half-life.
        let mut hist = UsageHistory::new(H, 100);
        for hour in 0..24 * 30 {
            hist.charge(UserId(0), QueueId(0), 10 * 3_600_000, t(hour));
        }
        for hour in 24 * 29..24 * 30 {
            hist.charge(UserId(1), QueueId(1), 100 * 3_600_000, t(hour));
        }
        let now = t(24 * 30);
        // Fresh burst dominates at first...
        assert!(hist.user_share(UserId(1), now) > hist.user_share(UserId(0), now));
        // ...but with the steady user still charging, a week on the stale
        // burst has decayed below the steady 10 % share.
        for hour in 24 * 30..24 * 37 {
            hist.charge(UserId(0), QueueId(0), 10 * 3_600_000, t(hour));
        }
        let later = t(24 * 37);
        assert!(hist.user_share(UserId(0), later) < 0.11);
        assert!(hist.user_share(UserId(1), later) < hist.user_share(UserId(0), later));
    }

    #[test]
    fn snapshot_matches_direct_reads() {
        let mut hist = UsageHistory::new(H, 64);
        hist.charge(UserId(3), QueueId(1), 1_000_000, t(1));
        hist.charge(UserId(5), QueueId(1), 2_000_000, t(2));
        let now = t(5);
        let snap = hist.snapshot(now);
        for u in [UserId(3), UserId(5), UserId(9)] {
            assert_eq!(snap.user_share(u), hist.user_share(u, now));
            assert_eq!(snap.user_core_hours(u), hist.user_core_hours(u, now));
        }
        assert_eq!(
            snap.queue_core_hours(QueueId(1)),
            hist.queue_core_hours(QueueId(1), now)
        );
        assert_eq!(snap.queue_core_hours(QueueId(7)), 0.0);
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        let mut hist = UsageHistory::new(H, 100);
        hist.charge(UserId(0), QueueId(0), 3_600_000, t(0));
        hist.charge(UserId(2), QueueId(1), 1_234_567, t(17));
        hist.charge(UserId(0), QueueId(0), 999, t(40));
        let back = UsageHistory::from_json(&hist.to_json()).unwrap();
        assert_eq!(hist, back);
        assert_eq!(hist.fingerprint(), back.fingerprint());
    }

    #[test]
    fn zero_half_life_means_no_decay_and_no_share() {
        let mut hist = UsageHistory::new(SimDuration::ZERO, 100);
        hist.charge(UserId(0), QueueId(0), 3_600_000, t(0));
        assert!((hist.user_core_hours(UserId(0), t(1000)) - 1.0).abs() < 1e-12);
        // Shares are undefined without a decay horizon; read as 0.
        assert_eq!(hist.user_share(UserId(0), t(1000)), 0.0);
    }

    #[test]
    fn same_instant_charges_add_exactly() {
        let mut a = DecayedAccount::ZERO;
        a.charge(100.0, t(1), H);
        a.charge(200.0, t(1), H);
        assert_eq!(a.acc_ms, 300.0);
        assert_eq!(a.last, t(1));
    }
}
