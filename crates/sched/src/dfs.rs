//! Dynamic fairness (DFS) — the paper's §III-D.
//!
//! Static fairshare rebalances *historical usage*; it cannot stop a single
//! dynamic allocation from pushing a queued job hours into the future. The
//! DFS engine does: every candidate dynamic allocation comes with the list
//! of delays it would inflict on planned queued jobs, and the engine
//! accepts or rejects it against site-configured limits:
//!
//! * `DFSSingleJobDelay` — caps the *accumulated* delay of each individual
//!   queued job (`DFSSingleDelayTime`);
//! * `DFSTargetDelay` — caps the *cumulative* delay charged to a user (and
//!   to a group) within one `DFSInterval`;
//! * `DFSDynDelayPerm` — some credentials may never be delayed at all;
//! * delays to the evolving job's **own** user are exempt;
//! * at each interval boundary, accumulated user/group delay decays by
//!   `DFSDecay` (the paper's worked example: limit 4800 s, current 3600 s,
//!   decay 0.2 ⇒ the next interval starts charged with 720 s).

use dynbatch_core::{DfsConfig, GroupId, JobId, SimDuration, SimTime, UserId};
use std::collections::HashMap;

/// One delay a candidate dynamic allocation would inflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayCharge {
    /// The queued job being pushed back.
    pub job: JobId,
    /// Its owner.
    pub user: UserId,
    /// Its owner's group.
    pub group: GroupId,
    /// How much later it would start.
    pub delay: SimDuration,
}

/// Why a dynamic request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfsReject {
    /// Not enough idle (or preemptible) resources at all.
    NoResources,
    /// A delayed job's owner carries `DFSDynDelayPerm = 0`.
    PermDenied {
        /// The protected user.
        user: UserId,
    },
    /// A single queued job's accumulated delay would exceed its cap.
    SingleExceeded {
        /// The job whose cap would burst.
        job: JobId,
        /// Its accumulated delay including this charge.
        would_be: SimDuration,
        /// The applicable cap.
        limit: SimDuration,
    },
    /// A user's cumulative interval delay would exceed the target cap.
    UserTargetExceeded {
        /// The user.
        user: UserId,
        /// Cumulative delay including this charge.
        would_be: SimDuration,
        /// The applicable cap.
        limit: SimDuration,
    },
    /// A group's cumulative interval delay would exceed the target cap.
    GroupTargetExceeded {
        /// The group.
        group: GroupId,
        /// Cumulative delay including this charge.
        would_be: SimDuration,
        /// The applicable cap.
        limit: SimDuration,
    },
}

/// The verdict on one candidate dynamic allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfsVerdict {
    /// The allocation is fair; commit it.
    Allowed,
    /// The allocation violates a policy.
    Rejected(DfsReject),
}

/// The stateful dynamic-fairness accountant.
#[derive(Debug, Clone)]
pub struct DfsEngine {
    config: DfsConfig,
    interval_start: SimTime,
    /// Cumulative delay charged per user in the current interval.
    user_delay: HashMap<UserId, SimDuration>,
    /// Cumulative delay charged per group in the current interval.
    group_delay: HashMap<GroupId, SimDuration>,
    /// Accumulated delay per *queued job* (does not decay; cleared when the
    /// job starts or leaves the queue).
    job_delay: HashMap<JobId, SimDuration>,
}

impl DfsEngine {
    /// A fresh engine whose first interval starts at `start`.
    pub fn new(config: DfsConfig, start: SimTime) -> Self {
        DfsEngine {
            config,
            interval_start: start,
            user_delay: HashMap::new(),
            group_delay: HashMap::new(),
            job_delay: HashMap::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// Rolls interval boundaries forward to cover `now`, decaying
    /// accumulated user/group delay by `DFSDecay` per boundary crossed.
    ///
    /// The naive implementation walks one boundary at a time — a
    /// month-scale gap with a 1 h interval is ~720 decay sweeps on the
    /// scheduler hot path. [`SimDuration::mul_f64`] rounds to the
    /// millisecond per application, so `k` sweeps are *not* one
    /// `decay^k`; instead the common cases short-circuit (empty maps,
    /// decay 0 or 1) and the general loop stops as soon as the maps drain
    /// or hit a rounding fixed point, then jumps the remaining
    /// boundaries. Equivalence with the naive loop is pinned by a
    /// property test below.
    pub fn advance_to(&mut self, now: SimTime) {
        if self.config.interval.is_zero() || now < self.interval_start + self.config.interval {
            return;
        }
        let i_ms = self.config.interval.as_millis();
        let k = (now - self.interval_start).as_millis() / i_ms;
        let end = self.interval_start + SimDuration::from_millis(k * i_ms);
        let decay = self.config.decay;
        if self.user_delay.is_empty() && self.group_delay.is_empty() {
            // Nothing to decay: every boundary is a no-op.
        } else if decay == 0.0 {
            // The first boundary already wipes everything.
            self.user_delay.clear();
            self.group_delay.clear();
        } else if decay == 1.0 {
            // Values are fixed under decay; one sweep drops the zero
            // entries the naive loop would have retained out.
            self.user_delay.retain(|_, v| !v.is_zero());
            self.group_delay.retain(|_, v| !v.is_zero());
        } else {
            // General decay: walk boundaries, but stop once the maps
            // drain or a rounding fixed point makes further sweeps
            // no-ops (`mul_f64` can pin small values, e.g. 1 ms × 0.9
            // rounds back to 1 ms).
            for _ in 0..k {
                let mut changed = false;
                for v in self.user_delay.values_mut() {
                    let next = v.mul_f64(decay);
                    changed |= next != *v;
                    *v = next;
                }
                for v in self.group_delay.values_mut() {
                    let next = v.mul_f64(decay);
                    changed |= next != *v;
                    *v = next;
                }
                self.user_delay.retain(|_, v| !v.is_zero());
                self.group_delay.retain(|_, v| !v.is_zero());
                if !changed {
                    break;
                }
            }
        }
        self.interval_start = end;
    }

    /// Evaluates whether charging `delays` (on behalf of an evolving job
    /// owned by `evolving_user`) is fair under the configured policy.
    ///
    /// Zero-delay and same-user charges are ignored (paper: "when the
    /// evolving job and the static job are from the same user, the delay is
    /// not considered").
    pub fn evaluate(&self, evolving_user: UserId, delays: &[DelayCharge]) -> DfsVerdict {
        self.evaluate_scaled(evolving_user, delays, 1.0)
    }

    /// [`DfsEngine::evaluate`] with the `DFSTargetDelay` budgets scaled by
    /// `target_scale` — the time-aware heavy-user penalty. The Maui gate
    /// passes a scale < 1 when the requesting user is above their decayed
    /// resource-hour share, so recent heavy users get proportionally less
    /// headroom to inflict delays on queued jobs. A scale ≥ 1 leaves the
    /// configured budgets untouched (`evaluate` is exactly scale = 1).
    pub fn evaluate_scaled(
        &self,
        evolving_user: UserId,
        delays: &[DelayCharge],
        target_scale: f64,
    ) -> DfsVerdict {
        let scale_limit = |limit: SimDuration| {
            if target_scale < 1.0 {
                limit.mul_f64(target_scale)
            } else {
                limit
            }
        };
        let policy = self.config.policy;
        let relevant: Vec<&DelayCharge> = delays
            .iter()
            .filter(|d| !d.delay.is_zero() && d.user != evolving_user)
            .collect();
        if relevant.is_empty() {
            return DfsVerdict::Allowed;
        }

        // Permission applies under every policy, including NONE? The paper
        // presents DFSDynDelayPerm as part of the DFS parameter family; with
        // DFSPolicy NONE "the delay caused to static jobs will be ignored",
        // so NONE bypasses everything, including perm flags.
        if policy == dynbatch_core::DfsPolicy::None {
            return DfsVerdict::Allowed;
        }

        for d in &relevant {
            let limits = self.config.effective_limits(d.user, d.group);
            if !limits.dyn_delay_perm {
                return DfsVerdict::Rejected(DfsReject::PermDenied { user: d.user });
            }
        }

        if policy.checks_single() {
            for d in &relevant {
                let limits = self.config.effective_limits(d.user, d.group);
                if let Some(limit) = limits.single_delay_time {
                    let acc = self
                        .job_delay
                        .get(&d.job)
                        .copied()
                        .unwrap_or(SimDuration::ZERO);
                    let would_be = acc.saturating_add(d.delay);
                    if would_be > limit {
                        return DfsVerdict::Rejected(DfsReject::SingleExceeded {
                            job: d.job,
                            would_be,
                            limit,
                        });
                    }
                }
            }
        }

        if policy.checks_target() {
            // Aggregate this request's charges per user and per group.
            let mut per_user: HashMap<UserId, SimDuration> = HashMap::new();
            let mut per_group: HashMap<GroupId, SimDuration> = HashMap::new();
            let mut user_group: HashMap<UserId, GroupId> = HashMap::new();
            for d in &relevant {
                *per_user.entry(d.user).or_insert(SimDuration::ZERO) += d.delay;
                *per_group.entry(d.group).or_insert(SimDuration::ZERO) += d.delay;
                user_group.insert(d.user, d.group);
            }
            let mut users: Vec<_> = per_user.into_iter().collect();
            users.sort_by_key(|(u, _)| *u);
            for (user, charge) in users {
                let group = user_group[&user];
                let limits = self.config.effective_limits(user, group);
                if let Some(limit) = limits.target_delay_time.map(scale_limit) {
                    let cur = self
                        .user_delay
                        .get(&user)
                        .copied()
                        .unwrap_or(SimDuration::ZERO);
                    let would_be = cur.saturating_add(charge);
                    if would_be > limit {
                        return DfsVerdict::Rejected(DfsReject::UserTargetExceeded {
                            user,
                            would_be,
                            limit,
                        });
                    }
                }
            }
            let mut groups: Vec<_> = per_group.into_iter().collect();
            groups.sort_by_key(|(g, _)| *g);
            for (group, charge) in groups {
                if let Some(glim) = self.config.groups.get(&group) {
                    if let Some(limit) = glim.target_delay_time.map(scale_limit) {
                        let cur = self
                            .group_delay
                            .get(&group)
                            .copied()
                            .unwrap_or(SimDuration::ZERO);
                        let would_be = cur.saturating_add(charge);
                        if would_be > limit {
                            return DfsVerdict::Rejected(DfsReject::GroupTargetExceeded {
                                group,
                                would_be,
                                limit,
                            });
                        }
                    }
                }
            }
        }

        DfsVerdict::Allowed
    }

    /// Commits the charges of an *allowed* allocation into the statistics
    /// (paper Algorithm 2, step 17: "Update dynamic fairshare statistics").
    pub fn commit(&mut self, evolving_user: UserId, delays: &[DelayCharge]) {
        for d in delays {
            if d.delay.is_zero() || d.user == evolving_user {
                continue;
            }
            *self.user_delay.entry(d.user).or_insert(SimDuration::ZERO) += d.delay;
            *self.group_delay.entry(d.group).or_insert(SimDuration::ZERO) += d.delay;
            *self.job_delay.entry(d.job).or_insert(SimDuration::ZERO) += d.delay;
        }
    }

    /// Clears per-job accounting once `job` starts or leaves the queue.
    pub fn job_left_queue(&mut self, job: JobId) {
        self.job_delay.remove(&job);
    }

    /// The user's cumulative charged delay in the current interval.
    pub fn user_charged(&self, user: UserId) -> SimDuration {
        self.user_delay
            .get(&user)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The group's cumulative charged delay in the current interval.
    pub fn group_charged(&self, group: GroupId) -> SimDuration {
        self.group_delay
            .get(&group)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The queued job's accumulated delay.
    pub fn job_charged(&self, job: JobId) -> SimDuration {
        self.job_delay
            .get(&job)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{CredLimits, DfsPolicy};

    fn charge(job: u64, user: u32, group: u32, secs: u64) -> DelayCharge {
        DelayCharge {
            job: JobId(job),
            user: UserId(user),
            group: GroupId(group),
            delay: SimDuration::from_secs(secs),
        }
    }

    fn target_cfg(limit_secs: u64) -> DfsConfig {
        DfsConfig::uniform_target(limit_secs, SimDuration::from_hours(1))
    }

    #[test]
    fn policy_none_allows_everything() {
        let eng = DfsEngine::new(DfsConfig::highest_priority(), SimTime::ZERO);
        let v = eng.evaluate(UserId(99), &[charge(1, 0, 0, 100_000)]);
        assert_eq!(v, DfsVerdict::Allowed);
    }

    #[test]
    fn target_limit_enforced() {
        let mut eng = DfsEngine::new(target_cfg(500), SimTime::ZERO);
        // 400 s: fine.
        let d1 = [charge(1, 0, 0, 400)];
        assert_eq!(eng.evaluate(UserId(9), &d1), DfsVerdict::Allowed);
        eng.commit(UserId(9), &d1);
        assert_eq!(eng.user_charged(UserId(0)), SimDuration::from_secs(400));
        // Another 200 s would burst the 500 s cap.
        let d2 = [charge(2, 0, 0, 200)];
        match eng.evaluate(UserId(9), &d2) {
            DfsVerdict::Rejected(DfsReject::UserTargetExceeded {
                user,
                would_be,
                limit,
            }) => {
                assert_eq!(user, UserId(0));
                assert_eq!(would_be, SimDuration::from_secs(600));
                assert_eq!(limit, SimDuration::from_secs(500));
            }
            v => panic!("expected target rejection, got {v:?}"),
        }
        // 100 s exactly reaches the cap: allowed (limit is inclusive).
        let d3 = [charge(2, 0, 0, 100)];
        assert_eq!(eng.evaluate(UserId(9), &d3), DfsVerdict::Allowed);
    }

    #[test]
    fn same_user_delays_exempt() {
        let eng = DfsEngine::new(target_cfg(500), SimTime::ZERO);
        // The evolving job's own user may be delayed without limit.
        let v = eng.evaluate(UserId(0), &[charge(1, 0, 0, 100_000)]);
        assert_eq!(v, DfsVerdict::Allowed);
    }

    #[test]
    fn zero_delays_ignored() {
        let eng = DfsEngine::new(target_cfg(1), SimTime::ZERO);
        let v = eng.evaluate(UserId(9), &[charge(1, 0, 0, 0)]);
        assert_eq!(v, DfsVerdict::Allowed);
    }

    #[test]
    fn perm_denied_blocks() {
        let mut cfg = target_cfg(10_000);
        cfg.users.insert(UserId(2), CredLimits::never_delay());
        let eng = DfsEngine::new(cfg, SimTime::ZERO);
        let v = eng.evaluate(UserId(9), &[charge(1, 2, 0, 1)]);
        assert_eq!(
            v,
            DfsVerdict::Rejected(DfsReject::PermDenied { user: UserId(2) })
        );
    }

    #[test]
    fn group_perm_denied_blocks_members() {
        let mut cfg = target_cfg(10_000);
        cfg.groups.insert(GroupId(6), CredLimits::never_delay());
        let eng = DfsEngine::new(cfg, SimTime::ZERO);
        let v = eng.evaluate(UserId(9), &[charge(1, 2, 6, 1)]);
        assert_eq!(
            v,
            DfsVerdict::Rejected(DfsReject::PermDenied { user: UserId(2) })
        );
    }

    #[test]
    fn single_job_limit_accumulates() {
        let mut cfg = DfsConfig {
            policy: DfsPolicy::SingleJobDelay,
            ..DfsConfig::default()
        };
        cfg.default_limits = CredLimits::single(SimDuration::from_secs(1800));
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        let d1 = [charge(1, 0, 0, 1000)];
        assert_eq!(eng.evaluate(UserId(9), &d1), DfsVerdict::Allowed);
        eng.commit(UserId(9), &d1);
        assert_eq!(eng.job_charged(JobId(1)), SimDuration::from_secs(1000));
        // The same job can take at most 800 more.
        let d2 = [charge(1, 0, 0, 900)];
        assert!(matches!(
            eng.evaluate(UserId(9), &d2),
            DfsVerdict::Rejected(DfsReject::SingleExceeded { job: JobId(1), .. })
        ));
        // A different job of the same user is fresh.
        let d3 = [charge(2, 0, 0, 900)];
        assert_eq!(eng.evaluate(UserId(9), &d3), DfsVerdict::Allowed);
        // Once job 1 starts, its slate is wiped.
        eng.job_left_queue(JobId(1));
        assert_eq!(eng.evaluate(UserId(9), &d2), DfsVerdict::Allowed);
    }

    #[test]
    fn group_target_enforced() {
        let mut cfg = DfsConfig {
            policy: DfsPolicy::TargetDelay,
            interval: SimDuration::from_hours(6),
            ..DfsConfig::default()
        };
        cfg.groups
            .insert(GroupId(5), CredLimits::target(SimDuration::from_hours(4)));
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        // Two users of group 5 accumulate toward the same group cap.
        let d1 = [charge(1, 0, 5, 3 * 3600)];
        assert_eq!(eng.evaluate(UserId(9), &d1), DfsVerdict::Allowed);
        eng.commit(UserId(9), &d1);
        let d2 = [charge(2, 1, 5, 2 * 3600)];
        assert!(matches!(
            eng.evaluate(UserId(9), &d2),
            DfsVerdict::Rejected(DfsReject::GroupTargetExceeded {
                group: GroupId(5),
                ..
            })
        ));
    }

    #[test]
    fn decay_at_interval_boundary() {
        // Paper's example: current 3600 s, decay 0.2 ⇒ next interval starts
        // at 720 s.
        let mut cfg = target_cfg(4800);
        cfg.decay = 0.2;
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        let d = [charge(1, 0, 0, 3600)];
        eng.commit(UserId(9), &d);
        eng.advance_to(SimTime::ZERO + SimDuration::from_hours(1));
        assert_eq!(eng.user_charged(UserId(0)), SimDuration::from_secs(720));
        // The user can absorb 4080 more seconds this interval.
        let ok = [charge(2, 0, 0, 4080)];
        assert_eq!(eng.evaluate(UserId(9), &ok), DfsVerdict::Allowed);
        let too_much = [charge(2, 0, 0, 4081)];
        assert!(matches!(
            eng.evaluate(UserId(9), &too_much),
            DfsVerdict::Rejected(_)
        ));
    }

    #[test]
    fn multiple_intervals_decay_geometrically() {
        let mut cfg = target_cfg(10_000);
        cfg.decay = 0.5;
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        eng.commit(UserId(9), &[charge(1, 0, 0, 8000)]);
        eng.advance_to(SimTime::ZERO + SimDuration::from_hours(3));
        assert_eq!(eng.user_charged(UserId(0)), SimDuration::from_secs(1000));
    }

    #[test]
    fn zero_decay_forgets_everything() {
        let mut eng = DfsEngine::new(target_cfg(500), SimTime::ZERO);
        eng.commit(UserId(9), &[charge(1, 0, 0, 500)]);
        eng.advance_to(SimTime::ZERO + SimDuration::from_hours(1));
        assert_eq!(eng.user_charged(UserId(0)), SimDuration::ZERO);
        assert_eq!(
            eng.evaluate(UserId(9), &[charge(2, 0, 0, 500)]),
            DfsVerdict::Allowed
        );
    }

    /// The naive one-sweep-per-boundary loop `advance_to` replaced —
    /// retained as the executable specification.
    fn naive_advance(eng: &mut DfsEngine, now: SimTime) {
        if eng.config.interval.is_zero() {
            return;
        }
        while now >= eng.interval_start + eng.config.interval {
            let decay = eng.config.decay;
            for v in eng.user_delay.values_mut() {
                *v = v.mul_f64(decay);
            }
            for v in eng.group_delay.values_mut() {
                *v = v.mul_f64(decay);
            }
            eng.user_delay.retain(|_, v| !v.is_zero());
            eng.group_delay.retain(|_, v| !v.is_zero());
            eng.interval_start += eng.config.interval;
        }
    }

    fn assert_engines_equal(a: &DfsEngine, b: &DfsEngine, ctx: &str) {
        assert_eq!(a.interval_start, b.interval_start, "{ctx}: interval_start");
        assert_eq!(a.user_delay, b.user_delay, "{ctx}: user_delay");
        assert_eq!(a.group_delay, b.group_delay, "{ctx}: group_delay");
        assert_eq!(a.job_delay, b.job_delay, "{ctx}: job_delay");
    }

    #[test]
    fn advance_jump_matches_naive_loop() {
        // Property test: random commit/advance interleavings — gaps up to
        // a month against a 1 h interval, decays including the 0.0 / 1.0
        // fast paths and rounding-fixed-point cases — leave the
        // fast-path engine in exactly the naive engine's state.
        let mut rng = 0x2014_0907_u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for decay in [0.0, 0.2, 0.5, 0.9, 1.0] {
            let mut cfg = target_cfg(1_000_000);
            cfg.decay = decay;
            let mut fast = DfsEngine::new(cfg.clone(), SimTime::ZERO);
            let mut slow = DfsEngine::new(cfg, SimTime::ZERO);
            let mut now = SimTime::ZERO;
            for step in 0..150 {
                let gap_ms = match next() % 4 {
                    0 => next() % 3_600_000,
                    1 => 3_600_000 + next() % 3_600_000,
                    2 => next() % (24 * 3_600_000),
                    _ => next() % (31 * 24 * 3_600_000),
                };
                now += SimDuration::from_millis(gap_ms);
                fast.advance_to(now);
                naive_advance(&mut slow, now);
                // Charge a small delay (sometimes 1 ms, to exercise the
                // mul_f64 rounding fixed point) to a random user/group.
                let d = [charge_ms(
                    next() % 8,
                    (next() % 4) as u32,
                    (next() % 2) as u32,
                    {
                        if next() % 3 == 0 {
                            1
                        } else {
                            next() % 10_000
                        }
                    },
                )];
                fast.commit(UserId(99), &d);
                slow.commit(UserId(99), &d);
                assert_engines_equal(&fast, &slow, &format!("decay={decay} step={step}"));
            }
        }
    }

    fn charge_ms(job: u64, user: u32, group: u32, ms: u64) -> DelayCharge {
        DelayCharge {
            job: JobId(job),
            user: UserId(user),
            group: GroupId(group),
            delay: SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn scaled_budget_tightens_target() {
        let eng = DfsEngine::new(target_cfg(500), SimTime::ZERO);
        let d = [charge(1, 0, 0, 400)];
        // Full budget: 400 s under the 500 s cap.
        assert_eq!(eng.evaluate_scaled(UserId(9), &d, 1.0), DfsVerdict::Allowed);
        // Heavy-user penalty halves the cap: 400 s bursts 250 s.
        assert!(matches!(
            eng.evaluate_scaled(UserId(9), &d, 0.5),
            DfsVerdict::Rejected(DfsReject::UserTargetExceeded {
                limit,
                ..
            }) if limit == SimDuration::from_secs(250)
        ));
        // Scales above 1 never loosen the configured cap.
        let big = [charge(1, 0, 0, 501)];
        assert!(matches!(
            eng.evaluate_scaled(UserId(9), &big, 4.0),
            DfsVerdict::Rejected(DfsReject::UserTargetExceeded { .. })
        ));
        // evaluate() is exactly scale = 1.
        assert_eq!(
            eng.evaluate(UserId(9), &d),
            eng.evaluate_scaled(UserId(9), &d, 1.0)
        );
    }

    #[test]
    fn combined_policy_checks_both() {
        let mut cfg = DfsConfig {
            policy: DfsPolicy::SingleAndTargetDelay,
            interval: SimDuration::from_hours(1),
            ..DfsConfig::default()
        };
        cfg.default_limits = CredLimits {
            dyn_delay_perm: true,
            target_delay_time: Some(SimDuration::from_secs(1000)),
            single_delay_time: Some(SimDuration::from_secs(300)),
        };
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        // Single limit trips first.
        assert!(matches!(
            eng.evaluate(UserId(9), &[charge(1, 0, 0, 400)]),
            DfsVerdict::Rejected(DfsReject::SingleExceeded { .. })
        ));
        // Spread across jobs: the user target trips.
        let spread = [
            charge(1, 0, 0, 300),
            charge(2, 0, 0, 300),
            charge(3, 0, 0, 300),
        ];
        assert_eq!(eng.evaluate(UserId(9), &spread), DfsVerdict::Allowed);
        eng.commit(UserId(9), &spread);
        assert!(matches!(
            eng.evaluate(UserId(9), &[charge(4, 0, 0, 200)]),
            DfsVerdict::Rejected(DfsReject::UserTargetExceeded { .. })
        ));
    }
}
