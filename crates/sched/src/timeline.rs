//! The resource-availability timeline.
//!
//! Every planning question the scheduler asks — *can this job start now?*,
//! *when is the earliest start for the highest-priority blocked job?*,
//! *would this backfill candidate (or this dynamic expansion) delay a
//! reservation?* — reduces to queries on a step function from time to idle
//! cores. [`AvailabilityProfile`] is that step function.
//!
//! The profile is built per scheduling iteration from the running jobs'
//! remaining walltimes, then *holds* are layered on as the iteration plans
//! starts, reservations and candidate dynamic expansions. Cloning a profile
//! is cheap (one `Vec` copy), which the delay-measurement pass exploits to
//! run what-if scenarios.

use dynbatch_core::{SimDuration, SimTime};

/// A step function `time → idle cores` over `[origin, ∞)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityProfile {
    origin: SimTime,
    capacity: u32,
    /// Breakpoints: `(start_time, idle_from_here_on)`. Always non-empty,
    /// sorted by time, first entry at `origin`; idle values within
    /// `0..=capacity`.
    steps: Vec<(SimTime, u32)>,
}

impl AvailabilityProfile {
    /// A fully idle profile: `capacity` cores free from `origin` onwards.
    pub fn new(origin: SimTime, capacity: u32) -> Self {
        AvailabilityProfile { origin, capacity, steps: vec![(origin, capacity)] }
    }

    /// The profile's origin (the scheduling instant).
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Total cores the profile was built with.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Idle cores at instant `t` (`t` may not precede the origin).
    pub fn idle_at(&self, t: SimTime) -> u32 {
        assert!(t >= self.origin, "query before profile origin");
        match self.steps.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(i) => self.steps[i].1,
            Err(0) => unreachable!("first step is at origin"),
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Minimum idle cores over `[from, to)`.
    pub fn min_idle(&self, from: SimTime, to: SimTime) -> u32 {
        assert!(from >= self.origin && to >= from);
        if from == to {
            return self.idle_at(from);
        }
        let mut min = self.idle_at(from);
        for &(s, idle) in &self.steps {
            if s > from && s < to {
                min = min.min(idle);
            }
        }
        min
    }

    /// Subtracts `cores` from the idle count over `[from, to)` — a running
    /// job, a planned start, a reservation, or a candidate dynamic
    /// expansion.
    ///
    /// # Panics
    /// If the subtraction would drive any segment negative: callers must
    /// check fit first (this keeps over-commitment bugs loud).
    pub fn hold(&mut self, from: SimTime, to: SimTime, cores: u32) {
        assert!(from >= self.origin, "hold starts before origin");
        if cores == 0 || from >= to {
            return;
        }
        self.ensure_breakpoint(from);
        if to < SimTime::MAX {
            self.ensure_breakpoint(to);
        }
        for step in &mut self.steps {
            if step.0 >= from && (to == SimTime::MAX || step.0 < to) {
                assert!(
                    step.1 >= cores,
                    "hold over-commits at {}: {} idle < {cores}",
                    step.0,
                    step.1
                );
                step.1 -= cores;
            }
        }
        self.coalesce();
    }

    /// Convenience: hold for a duration starting at `from`.
    pub fn hold_for(&mut self, from: SimTime, duration: SimDuration, cores: u32) {
        self.hold(from, from.saturating_add(duration), cores);
    }

    /// Returns `cores` to the idle count over `[from, to)` (e.g. a job
    /// finished early in a what-if scenario).
    ///
    /// # Panics
    /// If any segment would exceed capacity.
    pub fn release(&mut self, from: SimTime, to: SimTime, cores: u32) {
        assert!(from >= self.origin);
        if cores == 0 || from >= to {
            return;
        }
        self.ensure_breakpoint(from);
        if to < SimTime::MAX {
            self.ensure_breakpoint(to);
        }
        for step in &mut self.steps {
            if step.0 >= from && (to == SimTime::MAX || step.0 < to) {
                assert!(
                    step.1 + cores <= self.capacity,
                    "release exceeds capacity at {}",
                    step.0
                );
                step.1 += cores;
            }
        }
        self.coalesce();
    }

    /// The earliest `t ≥ not_before` such that at least `cores` cores are
    /// idle throughout `[t, t + duration)`. Returns `None` only if `cores`
    /// exceeds capacity (otherwise the far future always fits — running
    /// jobs end).
    pub fn earliest_fit(
        &self,
        cores: u32,
        duration: SimDuration,
        not_before: SimTime,
    ) -> Option<SimTime> {
        if cores > self.capacity {
            return None;
        }
        if cores == 0 {
            return Some(not_before.max(self.origin));
        }
        let start0 = not_before.max(self.origin);
        // Candidate start times: `start0` and every breakpoint after it.
        let mut candidates: Vec<SimTime> = vec![start0];
        candidates.extend(self.steps.iter().map(|&(s, _)| s).filter(|&s| s > start0));
        'candidate: for &t in &candidates {
            if self.idle_at(t) < cores {
                continue;
            }
            let end = t.saturating_add(duration);
            for &(s, idle) in &self.steps {
                if s > t && s < end && idle < cores {
                    continue 'candidate;
                }
            }
            return Some(t);
        }
        // Unreachable in practice: the last segment extends to ∞ and holds
        // are finite, so some candidate always fits. Kept as a guard.
        None
    }

    /// All breakpoints, for inspection and testing.
    pub fn steps(&self) -> &[(SimTime, u32)] {
        &self.steps
    }

    fn ensure_breakpoint(&mut self, t: SimTime) {
        match self.steps.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(_) => {}
            Err(i) => {
                debug_assert!(i > 0, "breakpoint before origin");
                let inherited = self.steps[i - 1].1;
                self.steps.insert(i, (t, inherited));
            }
        }
    }

    fn coalesce(&mut self) {
        self.steps.dedup_by(|next, prev| next.1 == prev.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn fresh_profile_is_flat() {
        let p = AvailabilityProfile::new(t(0), 120);
        assert_eq!(p.idle_at(t(0)), 120);
        assert_eq!(p.idle_at(t(1_000_000)), 120);
        assert_eq!(p.steps().len(), 1);
    }

    #[test]
    fn hold_creates_steps() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(5), t(15), 4);
        assert_eq!(p.idle_at(t(0)), 10);
        assert_eq!(p.idle_at(t(5)), 6);
        assert_eq!(p.idle_at(t(14)), 6);
        assert_eq!(p.idle_at(t(15)), 10);
    }

    #[test]
    fn overlapping_holds_stack() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(10), 3);
        p.hold(t(5), t(20), 3);
        assert_eq!(p.idle_at(t(4)), 7);
        assert_eq!(p.idle_at(t(5)), 4);
        assert_eq!(p.idle_at(t(10)), 7);
        assert_eq!(p.idle_at(t(20)), 10);
    }

    #[test]
    #[should_panic(expected = "over-commits")]
    fn hold_over_capacity_panics() {
        let mut p = AvailabilityProfile::new(t(0), 4);
        p.hold(t(0), t(10), 3);
        p.hold(t(5), t(6), 2);
    }

    #[test]
    fn hold_to_infinity() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(3), SimTime::MAX, 10);
        assert_eq!(p.idle_at(t(2)), 10);
        assert_eq!(p.idle_at(t(3)), 0);
        assert_eq!(p.idle_at(t(1_000_000)), 0);
    }

    #[test]
    fn release_undoes_hold() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(10), 4);
        p.release(t(0), t(10), 4);
        assert_eq!(p, AvailabilityProfile::new(t(0), 10));
    }

    #[test]
    fn min_idle_over_window() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(5), t(6), 8);
        assert_eq!(p.min_idle(t(0), t(5)), 10);
        assert_eq!(p.min_idle(t(0), t(6)), 2);
        assert_eq!(p.min_idle(t(6), t(100)), 10);
        assert_eq!(p.min_idle(t(3), t(3)), 10, "empty window = point query");
    }

    #[test]
    fn earliest_fit_immediate() {
        let p = AvailabilityProfile::new(t(0), 10);
        assert_eq!(p.earliest_fit(10, d(100), t(0)), Some(t(0)));
    }

    #[test]
    fn earliest_fit_waits_for_release() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(50), 8); // running job: 8 cores until t=50
        // 4 cores for 10s can't fit until t=50.
        assert_eq!(p.earliest_fit(4, d(10), t(0)), Some(t(50)));
        // 2 cores fit immediately.
        assert_eq!(p.earliest_fit(2, d(10), t(0)), Some(t(0)));
    }

    #[test]
    fn earliest_fit_needs_contiguous_window() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(20), t(30), 8); // a future reservation
        // 4 cores for 10s fit at t=0 (ends before the reservation).
        assert_eq!(p.earliest_fit(4, d(10), t(0)), Some(t(0)));
        // 4 cores for 25s would collide with [20,30): next chance is t=30.
        assert_eq!(p.earliest_fit(4, d(25), t(0)), Some(t(30)));
    }

    #[test]
    fn earliest_fit_honours_not_before() {
        let p = AvailabilityProfile::new(t(0), 10);
        assert_eq!(p.earliest_fit(1, d(1), t(42)), Some(t(42)));
    }

    #[test]
    fn earliest_fit_impossible() {
        let p = AvailabilityProfile::new(t(0), 10);
        assert_eq!(p.earliest_fit(11, d(1), t(0)), None);
        assert_eq!(p.earliest_fit(0, d(1), t(5)), Some(t(5)));
    }

    #[test]
    fn coalescing_keeps_profile_small() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(10), 4);
        p.hold(t(10), t(20), 4);
        // Adjacent equal segments merge: origin step + release at 20.
        assert_eq!(p.steps().len(), 2);
    }

    #[test]
    fn paper_fig1_scenario() {
        // Fig 1: 6 nodes (here: 6 cores, 1 core = 1 node). Job A holds 2
        // for 8 h; job B holds 2 for 4 h. Queued job C needs 4 for 4 h.
        let h = 3600;
        let mut p = AvailabilityProfile::new(t(0), 6);
        p.hold(t(0), t(8 * h), 2); // A
        p.hold(t(0), t(4 * h), 2); // B
        // C's earliest start: when B ends, at 4 h.
        assert_eq!(p.earliest_fit(4, d(4 * h), t(0)), Some(t(4 * h)));
        // Now A dynamically grabs the 2 idle nodes until its walltime end.
        p.hold(t(0), t(8 * h), 2);
        // C is pushed to 8 h — the unfair 4-hour delay the paper draws.
        assert_eq!(p.earliest_fit(4, d(4 * h), t(0)), Some(t(8 * h)));
    }
}
