//! The resource-availability timeline.
//!
//! Every planning question the scheduler asks — *can this job start now?*,
//! *when is the earliest start for the highest-priority blocked job?*,
//! *would this backfill candidate (or this dynamic expansion) delay a
//! reservation?* — reduces to queries on a step function from time to idle
//! cores. [`AvailabilityProfile`] is that step function.
//!
//! The profile is built per scheduling iteration from the running jobs'
//! remaining walltimes, then *holds* are layered on as the iteration plans
//! starts, reservations and candidate dynamic expansions. Cloning a profile
//! is cheap (one `Vec` copy) and [`AvailabilityProfile::assign_from`]
//! makes repeated what-if clones allocation-free, which the
//! delay-measurement pass exploits.
//!
//! # Complexity
//!
//! With `n` breakpoints and `k` breakpoints inside the mutated window:
//!
//! * [`AvailabilityProfile::idle_at`] — O(log n);
//! * [`AvailabilityProfile::min_idle`] — O(log n + k);
//! * [`AvailabilityProfile::hold`] / [`AvailabilityProfile::release`] —
//!   O(log n + k) value updates plus at most two breakpoint insertions
//!   and two boundary merges (each an O(n) `Vec` shift in the worst
//!   case, but no full-vector rescan or re-coalesce);
//! * [`AvailabilityProfile::earliest_fit`] — a single O(n) forward sweep
//!   with a running infeasibility cursor; no allocation.
//!
//! The naive O(n²) formulations these replaced live on as
//! [`crate::reference::NaiveProfile`], the executable specification the
//! property suite checks this implementation against.

use dynbatch_core::{SimDuration, SimTime};

/// How long past its walltime an overdue running job is still planned to
/// hold its cores (see [`planned_end`]).
pub const OVERDUE_GRACE: SimDuration = SimDuration::from_millis(1);

/// The instant the planner books a running job's hold as ending: its
/// walltime end, clamped to at least one grace tick past `now`.
///
/// A job past its walltime still physically holds its cores until the
/// resource manager reaps it. Planning it as ending at `now + 1 ms` keeps
/// the cores un-bookable *right now* while freeing them almost immediately
/// for reservations. (In the simulator kills are exact and the clamp never
/// engages; the wall-clock daemon needs it.) Every path that books running
/// jobs — the base rebuild, the malleable grow pass, shrink/preempt
/// releases, and the incremental delta applier — must agree on this clamp,
/// which is why it lives here rather than inline at each call site.
pub fn planned_end(now: SimTime, walltime_end: SimTime) -> SimTime {
    walltime_end.max(now.saturating_add(OVERDUE_GRACE))
}

/// A step function `time → idle cores` over `[origin, ∞)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvailabilityProfile {
    origin: SimTime,
    capacity: u32,
    /// Breakpoints: `(start_time, idle_from_here_on)`. Always non-empty,
    /// sorted by time, first entry at `origin`; idle values within
    /// `0..=capacity`.
    steps: Vec<(SimTime, u32)>,
}

impl AvailabilityProfile {
    /// A fully idle profile: `capacity` cores free from `origin` onwards.
    pub fn new(origin: SimTime, capacity: u32) -> Self {
        AvailabilityProfile {
            origin,
            capacity,
            steps: vec![(origin, capacity)],
        }
    }

    /// The profile's origin (the scheduling instant).
    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Total cores the profile was built with.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Idle cores at instant `t` (`t` may not precede the origin).
    pub fn idle_at(&self, t: SimTime) -> u32 {
        assert!(t >= self.origin, "query before profile origin");
        self.steps[self.segment_index(t)].1
    }

    /// Minimum idle cores over `[from, to)`. O(log n + k) for `k`
    /// breakpoints inside the window.
    pub fn min_idle(&self, from: SimTime, to: SimTime) -> u32 {
        assert!(from >= self.origin && to >= from);
        // Index of the segment containing `from`.
        let lo = self.segment_index(from);
        if from == to {
            return self.steps[lo].1;
        }
        let mut min = self.steps[lo].1;
        for &(s, idle) in &self.steps[lo + 1..] {
            if s >= to {
                break;
            }
            min = min.min(idle);
        }
        min
    }

    /// Index of the segment whose span contains `t` (requires
    /// `t >= origin`).
    fn segment_index(&self, t: SimTime) -> usize {
        match self.steps.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(i) => i,
            Err(0) => unreachable!("first step is at origin"),
            Err(i) => i - 1,
        }
    }

    /// Subtracts `cores` from the idle count over `[from, to)` — a running
    /// job, a planned start, a reservation, or a candidate dynamic
    /// expansion.
    ///
    /// # Panics
    /// If the subtraction would drive any segment negative: callers must
    /// check fit first (this keeps over-commitment bugs loud).
    pub fn hold(&mut self, from: SimTime, to: SimTime, cores: u32) {
        assert!(from >= self.origin, "hold starts before origin");
        if cores == 0 || from >= to {
            return;
        }
        self.apply_window(from, to, |step, capacity| {
            let _ = capacity;
            assert!(
                step.1 >= cores,
                "hold over-commits at {}: {} idle < {cores}",
                step.0,
                step.1
            );
            step.1 -= cores;
        });
    }

    /// Convenience: hold for a duration starting at `from`.
    pub fn hold_for(&mut self, from: SimTime, duration: SimDuration, cores: u32) {
        self.hold(from, from.saturating_add(duration), cores);
    }

    /// Returns `cores` to the idle count over `[from, to)` (e.g. a job
    /// finished early in a what-if scenario).
    ///
    /// # Panics
    /// If any segment would exceed capacity.
    pub fn release(&mut self, from: SimTime, to: SimTime, cores: u32) {
        assert!(from >= self.origin);
        if cores == 0 || from >= to {
            return;
        }
        self.apply_window(from, to, |step, capacity| {
            assert!(
                step.1 + cores <= capacity,
                "release exceeds capacity at {}",
                step.0
            );
            step.1 += cores;
        });
    }

    /// Applies `mutate` to every segment overlapping `[from, to)`, touching
    /// only that index range: breakpoints are materialised at the window
    /// edges, the affected values updated in place, and only the two
    /// boundary joints re-checked for coalescing (a uniform update cannot
    /// make two *interior* neighbours equal — they differed before).
    fn apply_window(
        &mut self,
        from: SimTime,
        to: SimTime,
        mut mutate: impl FnMut(&mut (SimTime, u32), u32),
    ) {
        self.ensure_breakpoint(from);
        if to < SimTime::MAX {
            self.ensure_breakpoint(to);
        }
        let lo = self
            .steps
            .binary_search_by(|&(s, _)| s.cmp(&from))
            .expect("breakpoint at `from` was just ensured");
        let hi = if to == SimTime::MAX {
            self.steps.len()
        } else {
            self.steps
                .binary_search_by(|&(s, _)| s.cmp(&to))
                .expect("breakpoint at `to` was just ensured")
        };
        let capacity = self.capacity;
        for step in &mut self.steps[lo..hi] {
            mutate(step, capacity);
        }
        // Coalesce at the window edges only, higher index first so `lo`
        // stays valid while `hi` is handled.
        if hi < self.steps.len() && self.steps[hi].1 == self.steps[hi - 1].1 {
            self.steps.remove(hi);
        }
        if lo > 0 && self.steps[lo].1 == self.steps[lo - 1].1 {
            self.steps.remove(lo);
        }
    }

    /// The earliest `t ≥ not_before` such that at least `cores` cores are
    /// idle throughout `[t, t + duration)`. Returns `None` only if `cores`
    /// exceeds capacity (otherwise the far future always fits — running
    /// jobs end).
    pub fn earliest_fit(
        &self,
        cores: u32,
        duration: SimDuration,
        not_before: SimTime,
    ) -> Option<SimTime> {
        if cores > self.capacity {
            return None;
        }
        let start0 = not_before.max(self.origin);
        if cores == 0 {
            return Some(start0);
        }
        // Single forward sweep: `candidate` is the earliest start not yet
        // ruled out. Every segment is visited at most once — an infeasible
        // segment pushes the candidate past itself; a feasible one extends
        // the contiguous feasible run until it covers `duration`.
        let mut i = self.segment_index(start0);
        let mut candidate = start0;
        loop {
            if self.steps[i].1 < cores {
                // Infeasible here: restart the window at the next break.
                i += 1;
                if i == self.steps.len() {
                    // Unreachable in practice: holds are finite, so the
                    // last segment always has idle ≥ cores. Kept as a
                    // guard.
                    return None;
                }
                candidate = self.steps[i].0;
                continue;
            }
            let end = candidate.saturating_add(duration);
            if i + 1 == self.steps.len() || self.steps[i + 1].0 >= end {
                // Feasible through `end` (or to ∞): the candidate stands.
                return Some(candidate);
            }
            // The window extends into the next segment; keep sweeping.
            i += 1;
        }
    }

    /// All breakpoints, for inspection and testing.
    pub fn steps(&self) -> &[(SimTime, u32)] {
        &self.steps
    }

    /// Overwrites `self` with the pointwise sum of `parts`: capacity is
    /// the sum of the part capacities and `idle(t)` the sum of the part
    /// idle counts. All parts must share one origin (the scheduling
    /// instant) and `parts` must be non-empty.
    ///
    /// This is the sharded timeline's merge step: the global availability
    /// profile of a partitioned cluster is exactly the sum of the
    /// per-shard profiles, whatever the assignment of jobs to shards.
    /// The k-way merge emits breakpoints in time order and skips
    /// value-preserving ones, so the output is in canonical (coalesced)
    /// form — and canonical form is unique, so the merged profile is
    /// byte-equal to the profile the serial path builds over the whole
    /// cluster.
    pub fn sum_from(&mut self, parts: &[&AvailabilityProfile]) {
        assert!(!parts.is_empty(), "cannot sum zero profiles");
        let origin = parts[0].origin;
        self.origin = origin;
        self.capacity = 0;
        self.steps.clear();
        let mut idx = vec![0usize; parts.len()];
        let mut sum: u32 = 0;
        for p in parts {
            assert_eq!(p.origin, origin, "summed profiles must share an origin");
            self.capacity += p.capacity;
            sum += p.steps[0].1;
        }
        self.steps.push((origin, sum));
        loop {
            // The next breakpoint is the earliest unconsumed step time
            // across all parts; consume every part stepping at it.
            let mut next = SimTime::MAX;
            for (i, p) in parts.iter().enumerate() {
                if let Some(&(t, _)) = p.steps.get(idx[i] + 1) {
                    next = next.min(t);
                }
            }
            if next == SimTime::MAX {
                break;
            }
            for (i, p) in parts.iter().enumerate() {
                if p.steps.get(idx[i] + 1).is_some_and(|&(t, _)| t == next) {
                    sum = sum - p.steps[idx[i]].1 + p.steps[idx[i] + 1].1;
                    idx[i] += 1;
                }
            }
            if sum != self.steps.last().expect("steps never empty").1 {
                self.steps.push((next, sum));
            }
        }
    }

    /// Overwrites `self` with a copy of `other`, reusing `self`'s step
    /// buffer. This is the scratch-profile API: a what-if pass keeps one
    /// scratch `AvailabilityProfile` alive and `assign_from`s the base
    /// into it before each trial, so steady-state planning allocates
    /// nothing (`clone()` would allocate a fresh `Vec` per trial).
    pub fn assign_from(&mut self, other: &AvailabilityProfile) {
        self.origin = other.origin;
        self.capacity = other.capacity;
        self.steps.clear();
        self.steps.extend_from_slice(&other.steps);
    }

    /// Re-anchors the profile at `new_origin` (which may not precede the
    /// current origin), dropping every breakpoint strictly before it. The
    /// step function over `[new_origin, ∞)` is unchanged, and the result
    /// is identical to rebuilding the same holds with `new_origin` as the
    /// origin — dropping a prefix cannot make two surviving neighbours
    /// equal, so the canonical (coalesced) form is preserved.
    ///
    /// This is the incremental timeline's re-anchor step: amortised O(1)
    /// per breakpoint ever created, versus the O(running jobs) full
    /// rebuild it replaces.
    pub fn advance_origin(&mut self, new_origin: SimTime) {
        assert!(new_origin >= self.origin, "profile origin may only advance");
        if new_origin == self.origin {
            return;
        }
        let i = self.segment_index(new_origin);
        if i > 0 {
            self.steps.drain(..i);
        }
        self.steps[0].0 = new_origin;
        self.origin = new_origin;
    }

    /// Resets to a fully idle profile, reusing the step buffer.
    pub fn reset(&mut self, origin: SimTime, capacity: u32) {
        self.origin = origin;
        self.capacity = capacity;
        self.steps.clear();
        self.steps.push((origin, capacity));
    }

    fn ensure_breakpoint(&mut self, t: SimTime) {
        match self.steps.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(_) => {}
            Err(i) => {
                debug_assert!(i > 0, "breakpoint before origin");
                let inherited = self.steps[i - 1].1;
                self.steps.insert(i, (t, inherited));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn fresh_profile_is_flat() {
        let p = AvailabilityProfile::new(t(0), 120);
        assert_eq!(p.idle_at(t(0)), 120);
        assert_eq!(p.idle_at(t(1_000_000)), 120);
        assert_eq!(p.steps().len(), 1);
    }

    #[test]
    fn hold_creates_steps() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(5), t(15), 4);
        assert_eq!(p.idle_at(t(0)), 10);
        assert_eq!(p.idle_at(t(5)), 6);
        assert_eq!(p.idle_at(t(14)), 6);
        assert_eq!(p.idle_at(t(15)), 10);
    }

    #[test]
    fn overlapping_holds_stack() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(10), 3);
        p.hold(t(5), t(20), 3);
        assert_eq!(p.idle_at(t(4)), 7);
        assert_eq!(p.idle_at(t(5)), 4);
        assert_eq!(p.idle_at(t(10)), 7);
        assert_eq!(p.idle_at(t(20)), 10);
    }

    #[test]
    #[should_panic(expected = "over-commits")]
    fn hold_over_capacity_panics() {
        let mut p = AvailabilityProfile::new(t(0), 4);
        p.hold(t(0), t(10), 3);
        p.hold(t(5), t(6), 2);
    }

    #[test]
    fn hold_to_infinity() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(3), SimTime::MAX, 10);
        assert_eq!(p.idle_at(t(2)), 10);
        assert_eq!(p.idle_at(t(3)), 0);
        assert_eq!(p.idle_at(t(1_000_000)), 0);
    }

    #[test]
    fn release_undoes_hold() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(10), 4);
        p.release(t(0), t(10), 4);
        assert_eq!(p, AvailabilityProfile::new(t(0), 10));
    }

    #[test]
    fn min_idle_over_window() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(5), t(6), 8);
        assert_eq!(p.min_idle(t(0), t(5)), 10);
        assert_eq!(p.min_idle(t(0), t(6)), 2);
        assert_eq!(p.min_idle(t(6), t(100)), 10);
        assert_eq!(p.min_idle(t(3), t(3)), 10, "empty window = point query");
    }

    #[test]
    fn earliest_fit_immediate() {
        let p = AvailabilityProfile::new(t(0), 10);
        assert_eq!(p.earliest_fit(10, d(100), t(0)), Some(t(0)));
    }

    #[test]
    fn earliest_fit_waits_for_release() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(50), 8); // running job: 8 cores until t=50
                                // 4 cores for 10s can't fit until t=50.
        assert_eq!(p.earliest_fit(4, d(10), t(0)), Some(t(50)));
        // 2 cores fit immediately.
        assert_eq!(p.earliest_fit(2, d(10), t(0)), Some(t(0)));
    }

    #[test]
    fn earliest_fit_needs_contiguous_window() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(20), t(30), 8); // a future reservation
                                 // 4 cores for 10s fit at t=0 (ends before the reservation).
        assert_eq!(p.earliest_fit(4, d(10), t(0)), Some(t(0)));
        // 4 cores for 25s would collide with [20,30): next chance is t=30.
        assert_eq!(p.earliest_fit(4, d(25), t(0)), Some(t(30)));
    }

    #[test]
    fn earliest_fit_honours_not_before() {
        let p = AvailabilityProfile::new(t(0), 10);
        assert_eq!(p.earliest_fit(1, d(1), t(42)), Some(t(42)));
    }

    #[test]
    fn earliest_fit_impossible() {
        let p = AvailabilityProfile::new(t(0), 10);
        assert_eq!(p.earliest_fit(11, d(1), t(0)), None);
        assert_eq!(p.earliest_fit(0, d(1), t(5)), Some(t(5)));
    }

    #[test]
    fn coalescing_keeps_profile_small() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(10), 4);
        p.hold(t(10), t(20), 4);
        // Adjacent equal segments merge: origin step + release at 20.
        assert_eq!(p.steps().len(), 2);
    }

    #[test]
    fn assign_from_reuses_buffer() {
        let mut base = AvailabilityProfile::new(t(0), 10);
        base.hold(t(5), t(15), 4);
        let mut scratch = AvailabilityProfile::new(t(99), 1);
        scratch.assign_from(&base);
        assert_eq!(scratch, base);
        // Mutating the scratch leaves the base untouched.
        scratch.hold(t(0), t(5), 2);
        assert_eq!(base.idle_at(t(0)), 10);
        assert_eq!(scratch.idle_at(t(0)), 8);
        // Re-assigning restores equality without reallocating semantics.
        scratch.assign_from(&base);
        assert_eq!(scratch, base);
    }

    #[test]
    fn reset_restores_flat_profile() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(1), t(2), 3);
        p.reset(t(7), 20);
        assert_eq!(p, AvailabilityProfile::new(t(7), 20));
    }

    #[test]
    fn boundary_merge_with_preexisting_equal_neighbour() {
        // A hold whose window ends exactly where an equal-valued segment
        // begins must merge across that joint.
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(20), t(30), 4); // (0,10),(20,6),(30,10)
        p.hold(t(0), t(20), 4); // → (0,6),(30,10) after the hi-side merge
        assert_eq!(p.steps(), &[(t(0), 6), (t(30), 10)]);
        p.release(t(0), t(30), 4); // back to flat: lo- and hi-side merges
        assert_eq!(p.steps(), &[(t(0), 10)]);
    }

    #[test]
    fn earliest_fit_from_mid_segment() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(0), t(50), 8);
        // not_before falls inside the constrained segment; 2 cores fit
        // right there, 4 must wait for the release at t=50.
        assert_eq!(p.earliest_fit(2, d(10), t(25)), Some(t(25)));
        assert_eq!(p.earliest_fit(4, d(10), t(25)), Some(t(50)));
    }

    #[test]
    fn advance_origin_preserves_suffix_and_canonical_form() {
        let mut p = AvailabilityProfile::new(t(0), 10);
        p.hold(t(5), t(15), 4);
        p.hold(t(20), t(30), 7);

        // Advance into the middle of the first hold: the prefix breakpoints
        // vanish, the suffix is untouched.
        p.advance_origin(t(7));
        let mut fresh = AvailabilityProfile::new(t(7), 10);
        fresh.hold(t(7), t(15), 4);
        fresh.hold(t(20), t(30), 7);
        assert_eq!(p, fresh, "re-anchored profile must match a rebuild");

        // Advancing to an existing breakpoint and past all holds also
        // matches rebuilds.
        p.advance_origin(t(20));
        let mut fresh = AvailabilityProfile::new(t(20), 10);
        fresh.hold(t(20), t(30), 7);
        assert_eq!(p, fresh);
        p.advance_origin(t(40));
        assert_eq!(p, AvailabilityProfile::new(t(40), 10));
        assert_eq!(p.steps().len(), 1);

        // Same-instant advance is a no-op.
        p.advance_origin(t(40));
        assert_eq!(p, AvailabilityProfile::new(t(40), 10));
    }

    #[test]
    #[should_panic(expected = "origin may only advance")]
    fn advance_origin_backwards_panics() {
        let mut p = AvailabilityProfile::new(t(10), 4);
        p.advance_origin(t(9));
    }

    #[test]
    fn planned_end_clamps_overdue_jobs() {
        // Future walltime end: untouched.
        assert_eq!(planned_end(t(10), t(50)), t(50));
        // Overdue (or exactly due) job: one grace tick past now.
        let tick = SimTime::from_millis(10_001);
        assert_eq!(planned_end(t(10), t(10)), tick);
        assert_eq!(planned_end(t(10), t(3)), tick);
        // At the far-future boundary the clamp saturates instead of
        // overflowing.
        assert_eq!(planned_end(SimTime::MAX, t(3)), SimTime::MAX);
    }

    #[test]
    fn sum_from_matches_whole_cluster_profile() {
        // Splitting holds across two shard profiles and summing them must
        // reproduce the profile of the same holds on one big profile —
        // including the coalescing of breakpoints where one shard steps
        // down exactly as another steps up.
        let mut whole = AvailabilityProfile::new(t(10), 16);
        let mut a = AvailabilityProfile::new(t(10), 10);
        let mut b = AvailabilityProfile::new(t(10), 6);
        for (from, to, cores) in [(10, 40, 3u32), (20, 30, 5), (25, 60, 2)] {
            whole.hold(t(from), t(to), cores);
        }
        a.hold(t(10), t(40), 3);
        a.hold(t(20), t(30), 2);
        b.hold(t(20), t(30), 3);
        b.hold(t(25), t(60), 2);
        let mut merged = AvailabilityProfile::new(t(0), 0);
        merged.sum_from(&[&a, &b]);
        assert_eq!(merged, whole);

        // Opposite-direction steps at the same instant coalesce away.
        let mut c = AvailabilityProfile::new(t(0), 4);
        let mut e = AvailabilityProfile::new(t(0), 4);
        c.hold(t(0), t(5), 1); // steps up at 5
        e.hold(t(5), t(9), 1); // steps down at 5
        merged.sum_from(&[&c, &e]);
        let mut expect = AvailabilityProfile::new(t(0), 8);
        expect.hold(t(0), t(9), 1);
        assert_eq!(merged, expect);

        // Single-part sum is a copy.
        merged.sum_from(&[&whole]);
        assert_eq!(merged, whole);
    }

    #[test]
    fn paper_fig1_scenario() {
        // Fig 1: 6 nodes (here: 6 cores, 1 core = 1 node). Job A holds 2
        // for 8 h; job B holds 2 for 4 h. Queued job C needs 4 for 4 h.
        let h = 3600;
        let mut p = AvailabilityProfile::new(t(0), 6);
        p.hold(t(0), t(8 * h), 2); // A
        p.hold(t(0), t(4 * h), 2); // B
                                   // C's earliest start: when B ends, at 4 h.
        assert_eq!(p.earliest_fit(4, d(4 * h), t(0)), Some(t(4 * h)));
        // Now A dynamically grabs the 2 idle nodes until its walltime end.
        p.hold(t(0), t(8 * h), 2);
        // C is pushed to 8 h — the unfair 4-hour delay the paper draws.
        assert_eq!(p.earliest_fit(4, d(4 * h), t(0)), Some(t(8 * h)));
    }
}
