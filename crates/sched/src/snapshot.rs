//! The scheduler's view of the world.
//!
//! Each Maui iteration begins by "obtaining resource information and
//! workload information from Torque" (paper Algorithm 1, steps 2–3). The
//! [`Snapshot`] is exactly that hand-off: a value type the resource
//! manager (simulated or threaded) builds and passes to
//! [`crate::maui::Maui::iterate`]. Keeping it a plain value keeps the
//! scheduler deterministic and trivially testable.

use crate::incremental::DeltaLog;
use crate::usage_history::UsageSnapshot;
use dynbatch_core::{GroupId, JobId, MalleableRange, QueueId, SimDuration, SimTime, UserId};

/// A job currently holding resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningJob {
    /// Job id.
    pub id: JobId,
    /// Owner.
    pub user: UserId,
    /// Owner's group.
    pub group: GroupId,
    /// Cores currently held (including past dynamic grants).
    pub cores: u32,
    /// When the job started.
    pub start_time: SimTime,
    /// When its walltime expires (the scheduler plans with walltime, not
    /// with actual — unknowable — completion).
    pub walltime_end: SimTime,
    /// Whether this job was started by backfill (and is therefore
    /// preemptible under the site policy).
    pub backfilled: bool,
    /// Cores pre-reserved for this job's future dynamic requests
    /// (guaranteeing policy); the planner treats them as held.
    pub reserved_extra: u32,
    /// The resize range of a malleable job (`None` for other classes).
    pub malleable: Option<MalleableRange>,
}

/// A job waiting in the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    /// Job id.
    pub id: JobId,
    /// Owner.
    pub user: UserId,
    /// Owner's group.
    pub group: GroupId,
    /// Submission queue ([`dynbatch_core::JobSpec::effective_queue`]):
    /// the per-queue resource-hour budget key.
    pub queue: QueueId,
    /// Requested cores.
    pub cores: u32,
    /// Requested walltime.
    pub walltime: SimDuration,
    /// Submission instant.
    pub submit_time: SimTime,
    /// Additive priority boost (ESP Z jobs).
    pub priority_boost: i64,
    /// The ESP Z rule: backfilling is suspended while this job is queued.
    pub suppress_backfill_while_queued: bool,
    /// Cores to pre-reserve on top of `cores` at start (guaranteeing
    /// policy); the job only starts when `cores + reserve_extra` fit.
    pub reserve_extra: u32,
    /// Moldable start range (`None` for other classes): the scheduler may
    /// start this job on any core count within it.
    pub moldable: Option<MalleableRange>,
}

/// A pending dynamic request from a running evolving job
/// (the server-side image of a `tm_dynget()` call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynRequest {
    /// The evolving job.
    pub job: JobId,
    /// Its owner (delays to this user's own queued jobs are exempt).
    pub user: UserId,
    /// Its owner's group.
    pub group: GroupId,
    /// Extra cores requested.
    pub extra_cores: u32,
    /// Remaining walltime of the evolving job — dynamic reservations are
    /// held until then (paper §III-D).
    pub remaining_walltime: SimDuration,
    /// FIFO sequence: dynamic requests are prioritised in arrival order
    /// (paper Algorithm 2, step 9).
    pub seq: u64,
    /// Negotiation deadline (the paper's future-work extension): while
    /// `now < deadline`, a request that cannot be served is *deferred* —
    /// it stays queued at the server and is reconsidered every iteration —
    /// instead of rejected. `None` = the paper's reject-immediately
    /// protocol.
    pub deadline: Option<SimTime>,
}

/// Scheduler input for one iteration.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// The scheduling instant.
    pub now: SimTime,
    /// Total cores across up nodes.
    pub total_cores: u32,
    /// Jobs currently holding cores.
    pub running: Vec<RunningJob>,
    /// Jobs waiting, in any order (the scheduler ranks them).
    pub queued: Vec<QueuedJob>,
    /// Pending dynamic requests, in any order (the scheduler sorts by
    /// `seq`).
    pub dyn_requests: Vec<DynRequest>,
    /// Decayed resource-hour accounts valued at `now`, when the resource
    /// manager runs time-aware fairness (`None` keeps the static path
    /// byte-identical to a build without the feature).
    pub usage: Option<UsageSnapshot>,
    /// Running-set mutations since the previous snapshot, for the
    /// scheduler's incremental timeline ([`crate::incremental`]).
    /// `None` (a snapshot built outside the incremental protocol) simply
    /// forces a full profile rebuild — correctness never depends on it.
    pub deltas: Option<DeltaLog>,
}

impl Snapshot {
    /// Cores currently in use or exclusively reserved.
    pub fn busy_cores(&self) -> u32 {
        self.running
            .iter()
            .map(|r| r.cores + r.reserved_extra)
            .sum()
    }

    /// Cores currently idle.
    pub fn idle_cores(&self) -> u32 {
        self.total_cores.saturating_sub(self.busy_cores())
    }

    /// True iff any queued job suppresses backfill (the Z rule).
    pub fn backfill_suppressed(&self) -> bool {
        self.queued.iter().any(|q| q.suppress_backfill_while_queued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_accounting() {
        let snap = Snapshot {
            now: SimTime::from_secs(0),
            total_cores: 120,
            running: vec![RunningJob {
                id: JobId(1),
                user: UserId(0),
                group: GroupId(0),
                cores: 50,
                start_time: SimTime::ZERO,
                walltime_end: SimTime::from_secs(100),
                backfilled: false,
                reserved_extra: 0,
                malleable: None,
            }],
            queued: vec![],
            dyn_requests: vec![],
            usage: None,
            deltas: None,
        };
        assert_eq!(snap.busy_cores(), 50);
        assert_eq!(snap.idle_cores(), 70);
        assert!(!snap.backfill_suppressed());
    }

    #[test]
    fn z_suppression() {
        let snap = Snapshot {
            now: SimTime::ZERO,
            total_cores: 120,
            running: vec![],
            queued: vec![QueuedJob {
                id: JobId(9),
                user: UserId(9),
                group: GroupId(0),
                queue: QueueId(0),
                cores: 120,
                walltime: SimDuration::from_secs(100),
                submit_time: SimTime::ZERO,
                priority_boost: 1_000_000,
                suppress_backfill_while_queued: true,
                reserve_extra: 0,
                moldable: None,
            }],
            dyn_requests: vec![],
            usage: None,
            deltas: None,
        };
        assert!(snap.backfill_suppressed());
    }
}
