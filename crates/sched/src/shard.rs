//! Partitioned timeline maintenance and the shard worker pool.
//!
//! The sharded scheduler splits the cluster's cores into `N` contiguous
//! slices, each owned by one shard with its own
//! [`IncrementalTimeline`] — so per-shard profile maintenance and the
//! speculative planning passes (`Maui::iterate` with `shards > 1`) touch
//! disjoint state. Three pieces live here:
//!
//! * [`ShardLayout`] — the contiguous core split. On a homogeneous
//!   cluster whose node count the shard count divides, the slices are
//!   node-aligned and equal to [`dynbatch_cluster::Cluster::contiguous_slices`];
//!   otherwise a slice boundary may cross a node, which is harmless
//!   because the scheduler books cores, not nodes.
//! * [`ShardedTimeline`] — `N` incremental timelines plus the routing
//!   that keeps them coherent: every global [`ProfileDelta`] is routed
//!   to per-shard deltas through the [`ShardRouter`]'s pure
//!   hash-plus-load rule, and the per-shard profiles are merged with
//!   [`AvailabilityProfile::sum_from`] into a global profile **byte-equal
//!   to the serial timeline's** — the global step function is the
//!   pointwise sum of the shard step functions whatever the assignment,
//!   and the canonical profile form is unique.
//! * The **cross-shard reservation protocol** — shards publish free
//!   summaries ([`ShardedTimeline::free_summaries`]), the coordinator
//!   composes a [`MultiShardHold`] ([`ShardedTimeline::plan_hold`]), and
//!   [`ShardedTimeline::commit_hold`] applies one ordinary `Started`
//!   delta per part in shard-id order. If a part is rejected mid-commit
//!   (a stale summary — e.g. a node failed after the summary was
//!   published), **every part already placed is rolled back** with the
//!   matching `Finished` delta before the error returns: no shard may
//!   keep a hold of an aborted reservation.
//!
//! [`with_round_pool`] is the scoped worker pool the sharded planner
//! runs on: `sim::sweep`'s idiom (scoped threads, task-indexed slots)
//! extended with a round barrier so one pool can serve many
//! speculate/commit rounds without re-spawning threads.

use crate::incremental::{DeltaLog, IncrementalTimeline, ProfileDelta, TimelineStats};
use crate::router::{MultiShardHold, ShardRouter};
use crate::snapshot::Snapshot;
use crate::timeline::AvailabilityProfile;
use dynbatch_core::{JobId, SimTime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The contiguous core split: shard `i` of `n` owns
/// `total / n + (i < total % n)` cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    cores: Vec<u32>,
}

impl ShardLayout {
    /// Splits `total_cores` over `shards` contiguous slices, remainder
    /// cores going to the lowest-id shards. Shards may own zero cores
    /// when there are more shards than cores.
    pub fn split(total_cores: u32, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        let n = shards as u32;
        let base = total_cores / n;
        let rem = total_cores % n;
        ShardLayout {
            cores: (0..n).map(|i| base + u32::from(i < rem)).collect(),
        }
    }

    /// Cores per shard, in shard-id order.
    pub fn cores(&self) -> &[u32] {
        &self.cores
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// Total cores across all shards.
    pub fn total(&self) -> u32 {
        self.cores.iter().sum()
    }
}

/// Why a cross-shard commit failed (the hold was fully rolled back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCommitError {
    /// The shard that rejected its part.
    pub shard: usize,
    /// Cores the stale hold asked of it.
    pub asked: u32,
    /// Cores it actually had free.
    pub free: u32,
}

/// Where one job's booked cores live across the shards.
#[derive(Debug, Clone, PartialEq, Eq)]
struct JobParts {
    /// `(shard, cores)` slices, sorted by shard id, all non-zero.
    parts: Vec<(usize, u32)>,
    /// The job's true walltime end — a grow that spills onto a new shard
    /// must book the new slice with the same end as the old ones.
    walltime_end: SimTime,
}

/// `N` per-shard incremental timelines kept coherent with the serial
/// [`IncrementalTimeline`]: same continuity rules, same re-anchor and
/// re-clamp semantics, and a merged profile asserted byte-equal to the
/// serial one (`profile_from_running`) by `Maui`'s equality guards.
#[derive(Debug, Clone)]
pub struct ShardedTimeline {
    router: ShardRouter,
    layout: ShardLayout,
    shards: Vec<IncrementalTimeline>,
    parts: HashMap<JobId, JobParts>,
    /// Free cores per shard at the current anchor (`now` of the last
    /// advance) — the published summaries holds are composed from.
    free_now: Vec<u32>,
    /// The anchor of the last advance.
    now: SimTime,
    /// Epoch of the snapshot last advanced to (continuity tracking,
    /// mirroring the serial timeline).
    epoch: Option<u64>,
    merged: AvailabilityProfile,
    stats: TimelineStats,
}

impl ShardedTimeline {
    /// An empty sharded timeline; the first advance always rebuilds.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardedTimeline {
            router: ShardRouter::new(shards),
            layout: ShardLayout::split(0, shards),
            shards: (0..shards).map(|_| IncrementalTimeline::new()).collect(),
            parts: HashMap::new(),
            free_now: vec![0; shards],
            now: SimTime::ZERO,
            epoch: None,
            merged: AvailabilityProfile::new(SimTime::ZERO, 0),
            stats: TimelineStats::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The merged (whole-cluster) profile, anchored at the last advance.
    pub fn profile(&self) -> &AvailabilityProfile {
        &self.merged
    }

    /// One shard's own profile.
    pub fn shard_profile(&self, shard: usize) -> &AvailabilityProfile {
        self.shards[shard].profile()
    }

    /// Maintenance counters (rebuilds / delta batches count whole
    /// advances, not per-shard applications).
    pub fn stats(&self) -> TimelineStats {
        self.stats
    }

    /// Forgets continuity: the next advance rebuilds unconditionally.
    pub fn invalidate(&mut self) {
        self.epoch = None;
    }

    /// The per-shard free-capacity summaries at the current anchor —
    /// what the coordinator composes cross-shard holds from.
    pub fn free_summaries(&self) -> &[u32] {
        &self.free_now
    }

    /// Stage 1 of the reservation protocol: compose a hold of `width`
    /// cores for `job` from the published summaries. `None` when the
    /// shards cannot carry it.
    pub fn plan_hold(&self, job: JobId, width: u32) -> Option<MultiShardHold> {
        self.router.compose_hold(job, width, &self.free_now)
    }

    /// Stage 2: commit a composed hold by applying one ordinary
    /// `Started` delta per part, in shard-id order. On a mid-commit
    /// rejection — the summary went stale between compose and commit —
    /// every already-placed part is released again (the abort path) and
    /// the error names the rejecting shard. After `Ok`, the hold is
    /// indistinguishable from one routed through
    /// [`ShardedTimeline::advance`].
    pub fn commit_hold(
        &mut self,
        hold: &MultiShardHold,
        walltime_end: SimTime,
    ) -> Result<(), ShardCommitError> {
        let now = self.now;
        for (i, &(s, c)) in hold.parts.iter().enumerate() {
            let started = ProfileDelta::Started {
                job: hold.job,
                held_cores: c,
                walltime_end,
            };
            if c > self.free_now[s] || !self.shards[s].apply_ops(now, &[started]) {
                // Abort: release every part placed so far, in every shard
                // it touched — a rejected cross-shard reservation must
                // leave no residue anywhere.
                let free = self.free_now[s];
                for &(ps, pc) in &hold.parts[..i] {
                    let ok =
                        self.shards[ps].apply_ops(now, &[ProfileDelta::Finished { job: hold.job }]);
                    debug_assert!(ok, "rollback of a just-placed part cannot fail");
                    self.free_now[ps] += pc;
                }
                return Err(ShardCommitError {
                    shard: s,
                    asked: c,
                    free,
                });
            }
            self.free_now[s] -= c;
        }
        self.parts.insert(
            hold.job,
            JobParts {
                parts: hold.parts.clone(),
                walltime_end,
            },
        );
        Ok(())
    }

    /// Brings all shards up to `snap`: the delta fast path when the
    /// snapshot's log extends the epoch last advanced to, a full rebuild
    /// otherwise. Either way the merged profile equals
    /// `profile_from_running(snap.now, snap.total_cores, &snap.running)`.
    pub fn advance(&mut self, snap: &Snapshot) -> &AvailabilityProfile {
        let continuous = match (&snap.deltas, self.epoch) {
            (Some(log), Some(epoch)) => {
                log.base_epoch == epoch
                    && snap.total_cores == self.layout.total()
                    && snap.now >= self.now
                    && !log
                        .deltas
                        .iter()
                        .any(|d| matches!(d, ProfileDelta::CapacityChanged))
            }
            _ => false,
        };
        let applied = continuous && {
            let log = snap.deltas.as_ref().expect("continuity implies a log");
            self.apply_log(snap.now, log)
        };
        if applied {
            self.stats.delta_batches += 1;
        } else {
            self.rebuild(snap);
            self.stats.rebuilds += 1;
        }
        self.epoch = snap.deltas.as_ref().map(|log| log.epoch);
        self.merge();
        &self.merged
    }

    /// Routes one global delta log into per-shard applications. Returns
    /// `false` on any inconsistency — shard state may then be torn and
    /// the caller rebuilds everything.
    fn apply_log(&mut self, now: SimTime, log: &DeltaLog) -> bool {
        self.now = now;
        for tl in &mut self.shards {
            tl.reanchor(now);
        }
        for delta in &log.deltas {
            match *delta {
                ProfileDelta::Started {
                    job,
                    held_cores,
                    walltime_end,
                } => {
                    if self.parts.contains_key(&job) {
                        return false;
                    }
                    let Some(hold) = self.router.compose_hold(job, held_cores, &self.free_now)
                    else {
                        return false;
                    };
                    if self.commit_hold(&hold, walltime_end).is_err() {
                        return false;
                    }
                }
                ProfileDelta::Finished { job } => {
                    let Some(jp) = self.parts.remove(&job) else {
                        return false;
                    };
                    for &(s, c) in &jp.parts {
                        if !self.shards[s].apply_ops(now, &[ProfileDelta::Finished { job }]) {
                            return false;
                        }
                        self.free_now[s] += c;
                    }
                }
                ProfileDelta::Resized { job, held_cores } => {
                    if !self.route_resize(now, job, held_cores) {
                        return false;
                    }
                }
                // Filtered out by the continuity check; defensive.
                ProfileDelta::CapacityChanged => return false,
            }
            self.stats.deltas_applied += 1;
        }
        true
    }

    /// Routes a resize: a grow fills the shards already holding parts
    /// (in shard-id order) and spills the rest through the router; a
    /// shrink releases from the highest-id part backwards.
    fn route_resize(&mut self, now: SimTime, job: JobId, held_cores: u32) -> bool {
        let Some(jp) = self.parts.get_mut(&job) else {
            return false;
        };
        let cur: u32 = jp.parts.iter().map(|p| p.1).sum();
        if held_cores > cur {
            let mut extra = held_cores - cur;
            // Fill existing parts up to their shard's free cores first —
            // growing in place emits a plain `Resized` on that shard.
            for p in jp.parts.iter_mut() {
                if extra == 0 {
                    break;
                }
                let take = extra.min(self.free_now[p.0]);
                if take == 0 {
                    continue;
                }
                p.1 += take;
                extra -= take;
                self.free_now[p.0] -= take;
                let resized = ProfileDelta::Resized {
                    job,
                    held_cores: p.1,
                };
                if !self.shards[p.0].apply_ops(now, &[resized]) {
                    return false;
                }
            }
            if extra > 0 {
                // Spill onto shards the job does not touch yet: an
                // ordinary composed hold, booked with the job's walltime
                // end so the new slices end with the old ones.
                let Some(hold) = self.router.compose_hold(job, extra, &self.free_now) else {
                    return false;
                };
                for &(s, c) in &hold.parts {
                    debug_assert!(
                        !jp.parts.iter().any(|p| p.0 == s),
                        "in-place fill exhausted free cores on held shards"
                    );
                    let started = ProfileDelta::Started {
                        job,
                        held_cores: c,
                        walltime_end: jp.walltime_end,
                    };
                    if !self.shards[s].apply_ops(now, &[started]) {
                        return false;
                    }
                    self.free_now[s] -= c;
                    jp.parts.push((s, c));
                }
                jp.parts.sort_unstable_by_key(|p| p.0);
            }
        } else if held_cores < cur {
            let mut give = cur - held_cores;
            while give > 0 {
                let Some(last) = jp.parts.last_mut() else {
                    return false;
                };
                let (s, take) = (last.0, last.1.min(give));
                last.1 -= take;
                give -= take;
                self.free_now[s] += take;
                let op = if last.1 == 0 {
                    jp.parts.pop();
                    ProfileDelta::Finished { job }
                } else {
                    ProfileDelta::Resized {
                        job,
                        held_cores: last.1,
                    }
                };
                if !self.shards[s].apply_ops(now, &[op]) {
                    return false;
                }
            }
            if jp.parts.is_empty() {
                // A resize to zero width: the job holds nothing anywhere
                // (the serial timeline keeps a zero-core hold; shards
                // drop it, which merges to the same profile, and a later
                // `Resized` back up re-books it as a fresh hold).
                self.parts.remove(&job);
            }
        }
        true
    }

    /// The slow path: re-split the layout for the snapshot's capacity and
    /// route every running job's hold from scratch, in running-set order.
    fn rebuild(&mut self, snap: &Snapshot) {
        let n = self.shards.len();
        self.now = snap.now;
        self.layout = ShardLayout::split(snap.total_cores, n);
        self.free_now.copy_from_slice(self.layout.cores());
        self.parts.clear();
        let mut shard_parts: Vec<Vec<(JobId, u32, SimTime)>> = vec![Vec::new(); n];
        for r in &snap.running {
            let width = r.cores + r.reserved_extra;
            let hold = self
                .router
                .compose_hold(r.id, width, &self.free_now)
                .expect("running set cannot exceed total cores");
            for &(s, c) in &hold.parts {
                shard_parts[s].push((r.id, c, r.walltime_end));
                self.free_now[s] -= c;
            }
            self.parts.insert(
                r.id,
                JobParts {
                    parts: hold.parts,
                    walltime_end: r.walltime_end,
                },
            );
        }
        for (s, tl) in self.shards.iter_mut().enumerate() {
            tl.rebuild_parts(snap.now, self.layout.cores()[s], &shard_parts[s]);
        }
    }

    /// Merges the per-shard profiles into the whole-cluster profile.
    fn merge(&mut self) {
        let parts: Vec<&AvailabilityProfile> = self.shards.iter().map(|t| t.profile()).collect();
        self.merged.sum_from(&parts);
    }
}

/// Control block of the round pool.
struct PoolCtrl {
    round: AtomicU64,
    done: AtomicU64,
    stop: AtomicBool,
    panicked: AtomicBool,
}

/// Sets `stop` when dropped, so a panic unwinding out of the driver
/// releases the spinning workers instead of deadlocking the scope.
struct StopGuard<'a>(&'a PoolCtrl);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::Release);
    }
}

/// Runs `drive` with a round-synchronised worker pool over `shared`.
///
/// Calling the closure handed to `drive` runs `work(shared, worker_id)`
/// once on every worker (the caller participates as worker 0) and
/// returns when all are finished — one speculation round. Workers park
/// between rounds on a yield-spin, so a single `std::thread::scope`
/// serves an arbitrary number of rounds without re-spawning threads:
/// this is `sim::sweep`'s scoped-pool idiom plus a reusable barrier.
///
/// With `workers <= 1` no threads are spawned and a round is a plain
/// call to `work(shared, 0)` — the degenerate path a single-core host
/// (and the CI container) takes, same code, same results: `work` must
/// derive everything from `shared` and its claimed tasks, never from
/// the worker id or count.
///
/// A panic in `work` on any worker is re-raised from the next round
/// call on the driver; a panic in `drive` itself stops the workers
/// before the scope joins them.
pub fn with_round_pool<W, R>(
    workers: usize,
    shared: &W,
    work: impl Fn(&W, usize) + Sync,
    drive: impl FnOnce(&mut dyn FnMut()) -> R,
) -> R
where
    W: Sync,
{
    if workers <= 1 {
        let mut round = || work(shared, 0);
        return drive(&mut round);
    }
    let ctrl = PoolCtrl {
        round: AtomicU64::new(0),
        done: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        panicked: AtomicBool::new(false),
    };
    std::thread::scope(|scope| {
        let ctrl = &ctrl;
        let work = &work;
        for wid in 1..workers {
            scope.spawn(move || {
                let mut seen = 0u64;
                loop {
                    if ctrl.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let r = ctrl.round.load(Ordering::Acquire);
                    if r == seen {
                        std::thread::yield_now();
                        continue;
                    }
                    seen = r;
                    // Keep a worker panic from deadlocking the barrier:
                    // record it, count the worker done, and let the
                    // driver re-raise after the round completes.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        work(shared, wid)
                    }));
                    if outcome.is_err() {
                        ctrl.panicked.store(true, Ordering::Release);
                    }
                    ctrl.done.fetch_add(1, Ordering::Release);
                }
            });
        }
        let _guard = StopGuard(ctrl);
        let mut round = || {
            ctrl.done.store(0, Ordering::Relaxed);
            ctrl.round.fetch_add(1, Ordering::Release);
            work(shared, 0);
            while ctrl.done.load(Ordering::Acquire) < (workers - 1) as u64 {
                std::thread::yield_now();
            }
            assert!(
                !ctrl.panicked.load(Ordering::Acquire),
                "a shard worker panicked during the round"
            );
        };
        drive(&mut round)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::profile_from_running;
    use crate::snapshot::RunningJob;
    use dynbatch_core::{GroupId, UserId};
    use std::sync::atomic::AtomicUsize;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn running(id: u64, cores: u32, end: SimTime) -> RunningJob {
        RunningJob {
            id: JobId(id),
            user: UserId(0),
            group: GroupId(0),
            cores,
            start_time: SimTime::ZERO,
            walltime_end: end,
            backfilled: false,
            reserved_extra: 0,
            malleable: None,
        }
    }

    fn snap(
        now: SimTime,
        total: u32,
        running: Vec<RunningJob>,
        deltas: Option<DeltaLog>,
    ) -> Snapshot {
        Snapshot {
            now,
            total_cores: total,
            running,
            deltas,
            ..Default::default()
        }
    }

    #[test]
    fn layout_splits_contiguously_with_remainder_first() {
        assert_eq!(ShardLayout::split(120, 4).cores(), &[30, 30, 30, 30]);
        assert_eq!(ShardLayout::split(10, 3).cores(), &[4, 3, 3]);
        assert_eq!(ShardLayout::split(2, 5).cores(), &[1, 1, 0, 0, 0]);
        assert_eq!(ShardLayout::split(7, 1).cores(), &[7]);
        assert_eq!(ShardLayout::split(10, 3).total(), 10);
    }

    #[test]
    fn sharded_advance_matches_serial_profile() {
        // Deltas routed across 3 shards must merge to exactly the serial
        // profile, through starts, finishes, resizes and overdue jobs.
        let mut tl = ShardedTimeline::new(3);
        let jobs = vec![running(1, 6, t(100)), running(2, 5, t(50))];
        tl.advance(&snap(
            t(0),
            16,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 0,
                epoch: 1,
                deltas: vec![],
            }),
        ));
        assert_eq!(tl.stats().rebuilds, 1);
        assert_eq!(*tl.profile(), profile_from_running(t(0), 16, &jobs));

        // Wide job 3 (8 cores) cannot fit in one shard of ~5: it becomes
        // a cross-shard hold on the fast path.
        let jobs2 = vec![
            running(1, 6, t(100)),
            running(2, 5, t(50)),
            running(3, 5, t(80)),
        ];
        tl.advance(&snap(
            t(10),
            16,
            jobs2.clone(),
            Some(DeltaLog {
                base_epoch: 1,
                epoch: 2,
                deltas: vec![ProfileDelta::Started {
                    job: JobId(3),
                    held_cores: 5,
                    walltime_end: t(80),
                }],
            }),
        ));
        assert_eq!(tl.stats().delta_batches, 1);
        assert_eq!(*tl.profile(), profile_from_running(t(10), 16, &jobs2));

        // Shrink job 1, finish job 2, grow job 3 past its shard.
        let jobs3 = vec![running(1, 2, t(100)), running(3, 9, t(80))];
        tl.advance(&snap(
            t(20),
            16,
            jobs3.clone(),
            Some(DeltaLog {
                base_epoch: 2,
                epoch: 3,
                deltas: vec![
                    ProfileDelta::Resized {
                        job: JobId(1),
                        held_cores: 2,
                    },
                    ProfileDelta::Finished { job: JobId(2) },
                    ProfileDelta::Resized {
                        job: JobId(3),
                        held_cores: 9,
                    },
                ],
            }),
        ));
        assert_eq!(tl.stats().delta_batches, 2);
        assert_eq!(*tl.profile(), profile_from_running(t(20), 16, &jobs3));
        assert_eq!(
            tl.free_summaries().iter().sum::<u32>(),
            16 - 11,
            "summaries track booked cores"
        );
    }

    #[test]
    fn epoch_gap_forces_rebuild_and_recovers() {
        let mut tl = ShardedTimeline::new(2);
        let jobs = vec![running(1, 4, t(100))];
        tl.advance(&snap(
            t(0),
            8,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 0,
                epoch: 1,
                deltas: vec![],
            }),
        ));
        tl.advance(&snap(
            t(5),
            8,
            jobs.clone(),
            Some(DeltaLog {
                base_epoch: 7,
                epoch: 8,
                deltas: vec![],
            }),
        ));
        assert_eq!(tl.stats().rebuilds, 2, "epoch gap rebuilds");
        assert_eq!(*tl.profile(), profile_from_running(t(5), 8, &jobs));
    }

    #[test]
    fn stale_hold_commit_aborts_everywhere() {
        // The cross-shard abort regression: a hold composed from stale
        // summaries must, when a later shard rejects its part, release
        // the parts earlier shards already booked. (Without the rollback
        // loop in `commit_hold`, the earlier shards keep phantom holds
        // and the summaries drift from the booked state.)
        let mut tl = ShardedTimeline::new(3);
        tl.advance(&snap(
            t(0),
            12,
            vec![],
            Some(DeltaLog {
                base_epoch: 0,
                epoch: 1,
                deltas: vec![],
            }),
        ));
        let before_free = tl.free_summaries().to_vec();
        let before_profiles: Vec<AvailabilityProfile> =
            (0..3).map(|s| tl.shard_profile(s).clone()).collect();

        // Compose a wide hold spanning all three shards, then invalidate
        // it: a competing job takes the last shard's cores between
        // compose and commit (the "node failed / summary stale" window).
        let wide = tl.plan_hold(JobId(10), 11).expect("11 of 12 fit");
        assert!(wide.parts.len() == 3, "hold spans all shards: {wide:?}");
        let competing = tl
            .router
            .compose_hold(JobId(99), 2, &[0, 0, 4])
            .expect("shard 2 has cores");
        tl.commit_hold(&competing, t(200)).expect("commit fits");

        let err = tl
            .commit_hold(&wide, t(100))
            .expect_err("stale hold must be rejected");
        assert_eq!(err.shard, 2, "the consumed shard rejects");

        // Abort must leave zero residue: summaries and every shard
        // profile (beyond the competing hold) exactly as before.
        for s in 0..3 {
            let expected_free = before_free[s] - if s == 2 { 2 } else { 0 };
            assert_eq!(tl.free_summaries()[s], expected_free, "shard {s} free");
            if s != 2 {
                assert_eq!(
                    *tl.shard_profile(s),
                    before_profiles[s],
                    "shard {s} kept a hold of the aborted reservation"
                );
            }
        }
        // And the aborted job is bookable again once capacity returns.
        let retry = tl.plan_hold(JobId(10), 9).expect("9 still free");
        tl.commit_hold(&retry, t(100)).expect("clean state commits");
    }

    #[test]
    fn round_pool_runs_every_worker_each_round() {
        for workers in [1, 2, 4] {
            let hits = AtomicUsize::new(0);
            let rounds = 5;
            with_round_pool(
                workers,
                &hits,
                |h, _wid| {
                    h.fetch_add(1, Ordering::Relaxed);
                },
                |round| {
                    for _ in 0..rounds {
                        round();
                    }
                },
            );
            assert_eq!(hits.load(Ordering::Relaxed), workers.max(1) * rounds);
        }
    }

    #[test]
    fn round_pool_propagates_worker_panics() {
        let caught = std::panic::catch_unwind(|| {
            with_round_pool(
                2,
                &(),
                |_, wid| {
                    if wid == 1 {
                        panic!("boom");
                    }
                },
                |round| round(),
            );
        });
        assert!(caught.is_err(), "worker panic must reach the driver");
    }
}
