//! Deterministic routing of work onto scheduler shards.
//!
//! A sharded scheduler splits the cluster's cores into contiguous slices
//! (see [`crate::shard`]) and must answer two questions without ever
//! consulting a clock or a thread id:
//!
//! 1. **Where does a job's hold live?** [`ShardRouter::compose_hold`]
//!    places a job's booked cores by a pure *hash-plus-load* rule: the
//!    job-id hash picks a home shard; if the home's free slice cannot
//!    carry the whole width, the remainder spills across the other shards
//!    in shard-id order starting after the home. A job wider than any
//!    single shard's free slice therefore becomes a [`MultiShardHold`] —
//!    the cross-shard reservation the coordinator commits part by part.
//! 2. **Which shard evaluates a request?** [`ShardRouter::assign_tasks`]
//!    folds over the request list in submission order, sending each
//!    request to its hash shard unless that shard is already more than
//!    one task ahead of the lightest shard, in which case the lightest
//!    (lowest-id on ties) takes it. The fold is a pure function of the
//!    id sequence — shard completion order cannot perturb it.
//!
//! Execution is decoupled from assignment: [`StealQueues`] hands the
//! per-shard task queues to a worker pool with *deterministic work
//! stealing* — a worker drains its own shards first and then steals from
//! victims in shard-id order. Which worker runs a task remains a race,
//! but results land in task-indexed slots ([`run_on_shards`]), so
//! stealing is unobservable in the output, exactly like the sweep
//! engine's cursor pool (`sim::sweep`).

use dynbatch_core::JobId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64 finalizer: a well-mixed pure hash of a job id.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One slice of a cross-shard hold: `(shard index, cores booked there)`.
pub type HoldPart = (usize, u32);

/// A hold composed across shards for a job wider than one shard's free
/// slice. Parts are sorted by shard id; commit and abort walk them in
/// that order (see `ShardedTimeline::commit_hold`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiShardHold {
    /// The job the hold belongs to.
    pub job: JobId,
    /// Non-zero core slices, sorted by shard id.
    pub parts: Vec<HoldPart>,
}

impl MultiShardHold {
    /// Total cores across all parts.
    pub fn width(&self) -> u32 {
        self.parts.iter().map(|p| p.1).sum()
    }
}

/// The pure decision rules mapping jobs and requests to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (at least one).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The hash-preferred shard of a job: a pure function of the id.
    pub fn hash_shard(&self, job: JobId) -> usize {
        (mix64(job.0) % self.shards as u64) as usize
    }

    /// The home shard given the current free summaries: the hash shard
    /// unless it has no free cores, in which case the shard with the most
    /// free cores (lowest id on ties).
    pub fn home_shard(&self, job: JobId, free: &[u32]) -> usize {
        debug_assert_eq!(free.len(), self.shards);
        let h = self.hash_shard(job);
        if free[h] > 0 {
            return h;
        }
        let mut best = 0;
        for (s, &f) in free.iter().enumerate() {
            if f > free[best] {
                best = s;
            }
        }
        best
    }

    /// Composes a hold of `width` cores from the per-shard free
    /// summaries: the home shard takes what it can, the remainder spills
    /// across the other shards in shard-id order starting after the home.
    /// Returns `None` if the shards' free cores cannot carry the width
    /// (a stale summary, or a genuinely full machine).
    pub fn compose_hold(&self, job: JobId, width: u32, free: &[u32]) -> Option<MultiShardHold> {
        debug_assert_eq!(free.len(), self.shards);
        let mut parts: Vec<HoldPart> = Vec::new();
        let mut rem = width;
        let home = self.home_shard(job, free);
        for k in 0..self.shards {
            if rem == 0 {
                break;
            }
            let s = (home + k) % self.shards;
            let take = rem.min(free[s]);
            if take > 0 {
                parts.push((s, take));
                rem -= take;
            }
        }
        if rem > 0 {
            return None;
        }
        parts.sort_unstable_by_key(|p| p.0);
        Some(MultiShardHold { job, parts })
    }

    /// Assigns a sequence of requests (in submission order) to shards by
    /// hash-plus-load: each request goes to its hash shard unless that
    /// shard already carries more than one task over the lightest shard,
    /// in which case the lightest shard (lowest id on ties) takes it.
    ///
    /// The result is a pure fold over the id sequence — independent of
    /// which shard *finishes* its work first, of worker count, and of
    /// thread timing.
    pub fn assign_tasks(&self, ids: impl IntoIterator<Item = JobId>) -> Vec<usize> {
        let mut load = vec![0usize; self.shards];
        ids.into_iter()
            .map(|id| {
                let h = self.hash_shard(id);
                let lightest = (0..self.shards)
                    .min_by_key(|&s| load[s])
                    .expect(">= 1 shard");
                let s = if load[h] <= load[lightest] + 1 {
                    h
                } else {
                    lightest
                };
                load[s] += 1;
                s
            })
            .collect()
    }
}

/// Per-shard task queues with deterministic work stealing.
///
/// Tasks are global indices pre-assigned to shards (see
/// [`ShardRouter::assign_tasks`]). A worker drains the queue of its own
/// shard first (`worker % shards`), then steals from victim shards in
/// shard-id order — the *victim order* is fixed by shard id, never by
/// thread timing. Claims go through per-shard atomic cursors, so each
/// task is handed out exactly once however many workers pull.
pub struct StealQueues {
    queues: Vec<Vec<usize>>,
    cursors: Vec<AtomicUsize>,
}

impl StealQueues {
    /// Builds the queues from a per-task shard assignment
    /// (`assign[task] = shard`).
    pub fn new(assign: &[usize], shards: usize) -> Self {
        assert!(shards >= 1);
        let mut queues = vec![Vec::new(); shards];
        for (task, &s) in assign.iter().enumerate() {
            queues[s].push(task);
        }
        StealQueues {
            queues,
            cursors: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Rewinds all cursors so the queues can be drained again (single
    /// writer only — callers synchronise rounds themselves).
    pub fn reset(&self) {
        for c in &self.cursors {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Claims the next task for `worker`: own shard first, then victims
    /// in shard-id order. Returns `None` when every queue is drained.
    pub fn next_for(&self, worker: usize) -> Option<usize> {
        let n = self.queues.len();
        let first = worker % n;
        for k in 0..n {
            let s = (first + k) % n;
            let p = self.cursors[s].fetch_add(1, Ordering::Relaxed);
            if p < self.queues[s].len() {
                return Some(self.queues[s][p]);
            }
        }
        None
    }
}

/// Runs every pre-assigned task on up to `workers` scoped threads through
/// [`StealQueues`] and returns results **indexed by task** — which worker
/// ran a task, and in what order the shards drained, is unobservable.
pub fn run_on_shards<T, F>(assign: &[usize], shards: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let queues = StealQueues::new(assign, shards);
    let slots: Vec<Mutex<Option<T>>> = (0..assign.len()).map(|_| Mutex::new(None)).collect();
    let workers = workers.clamp(1, shards.max(1));
    let worker_loop = |w: usize| {
        while let Some(task) = queues.next_for(w) {
            let value = run(task);
            *slots[task].lock().expect("slot poisoned") = Some(value);
        }
    };
    if workers <= 1 {
        worker_loop(0);
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..workers)
                .map(|w| scope.spawn(move || worker_loop(w)))
                .collect();
            worker_loop(0);
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every task claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_shard_is_pure_and_in_range() {
        let r = ShardRouter::new(5);
        for id in 0..200u64 {
            let s = r.hash_shard(JobId(id));
            assert!(s < 5);
            assert_eq!(s, r.hash_shard(JobId(id)), "hash must be pure");
        }
    }

    #[test]
    fn home_shard_prefers_hash_then_most_free() {
        let r = ShardRouter::new(3);
        let job = JobId(7);
        let h = r.hash_shard(job);
        let mut free = vec![4u32; 3];
        assert_eq!(r.home_shard(job, &free), h);
        // Exhaust the hash shard: the fullest shard takes over, lowest id
        // winning ties.
        free[h] = 0;
        let others: Vec<usize> = (0..3).filter(|&s| s != h).collect();
        free[others[0]] = 2;
        free[others[1]] = 2;
        assert_eq!(r.home_shard(job, &free), others[0].min(others[1]));
    }

    #[test]
    fn compose_hold_spills_in_shard_id_order() {
        let r = ShardRouter::new(4);
        // Find a job whose hash shard is 1 so the spill order is fixed.
        let job = (0..100u64)
            .map(JobId)
            .find(|&j| r.hash_shard(j) == 1)
            .expect("some id hashes to shard 1");
        let free = [3u32, 2, 5, 1];
        let hold = r.compose_hold(job, 8, &free).expect("8 <= 11 free");
        // Home 1 takes 2, spill to 2 (5), then 3 (1): sorted by shard id.
        assert_eq!(hold.parts, vec![(1, 2), (2, 5), (3, 1)]);
        assert_eq!(hold.width(), 8);
        // Exact fit across everything succeeds; one more core fails.
        assert!(r.compose_hold(job, 11, &free).is_some());
        assert!(r.compose_hold(job, 12, &free).is_none());
        // Zero width composes an empty hold.
        assert_eq!(r.compose_hold(job, 0, &free).expect("fits").parts, vec![]);
    }

    #[test]
    fn assign_tasks_balances_load() {
        let r = ShardRouter::new(3);
        let ids: Vec<JobId> = (0..60).map(JobId).collect();
        let assign = r.assign_tasks(ids.iter().copied());
        let mut load = [0usize; 3];
        for &s in &assign {
            load[s] += 1;
        }
        let (lo, hi) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        assert!(
            hi - lo <= 2,
            "hash-plus-load keeps shards within 2: {load:?}"
        );
        // Purity: same ids, same assignment.
        assert_eq!(assign, r.assign_tasks(ids.iter().copied()));
    }

    #[test]
    fn stealing_is_unobservable_in_results() {
        let r = ShardRouter::new(4);
        let ids: Vec<JobId> = (0..97).map(|i| JobId(i * 13 + 5)).collect();
        let assign = r.assign_tasks(ids.iter().copied());
        let expect: Vec<u64> = (0..97u64).map(|i| i * i).collect();
        for workers in [1, 2, 3, 4, 7] {
            let got = run_on_shards(&assign, 4, workers, |task| (task as u64).pow(2));
            assert_eq!(got, expect, "workers={workers}");
        }
    }
}
