//! Job prioritisation (Maui-style composite priority).
//!
//! The Maui scheduler computes a weighted sum of priority factors per job
//! and services jobs in descending order. We implement the factors the
//! paper's evaluation exercises: queue time (the FIFO backbone), the
//! expansion factor, resource size, an additive boost (used by the ESP Z
//! jobs), and the static-fairshare deviation.

use crate::fairshare::FairshareTracker;
use crate::snapshot::QueuedJob;
use crate::usage_history::UsageSnapshot;
use dynbatch_core::{FairshareConfig, PriorityWeights, QueueId, SimTime, UserId};
use std::cmp::Ordering;

/// The fairness mechanism feeding the composite priority — selected by
/// [`dynbatch_core::FairshareMode`].
///
/// `Static` is the classic windowed tracker; `TimeAware` reads the
/// decayed resource-hour accounts ([`crate::usage_history`]) and adds
/// budget demotion on top of the share-deviation delta. Passed by value:
/// it is a couple of borrows.
#[derive(Debug, Clone, Copy)]
pub enum FairnessView<'a> {
    /// No fairness contribution at all.
    None,
    /// Classic windowed fairshare (byte-identical to the historical
    /// behavior of passing `Option<&FairshareTracker>`).
    Static(&'a FairshareTracker),
    /// Decayed resource-hour fairness: share deviation plus budget
    /// demotion. `usage: None` (no accounts published yet) contributes
    /// the target-only delta, exactly like an empty history.
    TimeAware {
        /// The fairshare configuration (targets, budgets, demotion).
        config: &'a FairshareConfig,
        /// The decayed accounts valued at the scheduling instant.
        usage: Option<&'a UsageSnapshot>,
    },
}

impl FairnessView<'_> {
    /// The fairshare priority component for `user`: `target − share`,
    /// positive when the user is under-served.
    pub fn delta(&self, user: UserId) -> f64 {
        match self {
            FairnessView::None => 0.0,
            FairnessView::Static(fs) => fs.priority_delta(user),
            FairnessView::TimeAware { config, usage } => {
                if !config.enabled {
                    return 0.0;
                }
                let target = config
                    .user_targets
                    .get(&user)
                    .copied()
                    .unwrap_or(config.default_target);
                target - usage.map_or(0.0, |u| u.user_share(user))
            }
        }
    }

    /// The resource-hour budget demotion for a job of `user` in `queue`:
    /// `budget_demotion` when either the user or the queue is over its
    /// decayed core-hour budget, else `0.0`. Over-budget owners' jobs
    /// are *demoted*, never denied — they rank behind in-budget work and
    /// recover as decay drains the account.
    pub fn demotion(&self, user: UserId, queue: QueueId) -> f64 {
        match self {
            FairnessView::TimeAware {
                config,
                usage: Some(u),
            } if config.enabled => {
                let over_user = config
                    .user_budget_core_hours
                    .is_some_and(|b| u.user_core_hours(user) > b);
                let over_queue = config
                    .queue_budget_core_hours
                    .is_some_and(|b| u.queue_core_hours(queue) > b);
                if over_user || over_queue {
                    config.budget_demotion
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }
}

/// A queued job's computed priority, with deterministic tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Priority {
    /// The composite score (higher runs first).
    pub score: f64,
    /// Tie-break 1: earlier submission wins.
    pub submit_time: SimTime,
    /// Tie-break 2: lower job id wins.
    pub job_seq: u64,
}

impl Priority {
    /// Total order: score desc, then submit asc, then id asc.
    pub fn cmp_desc(&self, other: &Priority) -> Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.submit_time.cmp(&other.submit_time))
            .then_with(|| self.job_seq.cmp(&other.job_seq))
    }
}

/// Computes the composite priority of a queued job at instant `now`.
///
/// The budget demotion subtracts after the weighted sum; a demotion of
/// `0.0` (every non-time-aware view) leaves the score bit-identical to
/// the historical formula.
pub fn priority_of(
    job: &QueuedJob,
    now: SimTime,
    weights: &PriorityWeights,
    fairness: FairnessView<'_>,
) -> Priority {
    let wait_min = now.duration_since(job.submit_time).as_mins_f64();
    let walltime_min = job.walltime.as_mins_f64().max(1e-9);
    let expansion = wait_min / walltime_min;
    let fs_delta = fairness.delta(job.user);
    let score = job.priority_boost as f64
        + weights.queue_time_weight * wait_min
        + weights.expansion_weight * expansion
        + weights.resource_weight * job.cores as f64
        + weights.fairshare_weight * fs_delta
        - fairness.demotion(job.user, job.queue);
    Priority {
        score,
        submit_time: job.submit_time,
        job_seq: job.id.0,
    }
}

/// Sorts queued jobs into scheduling order (highest priority first).
///
/// Generic over ownership so the scheduler can rank a vector of
/// `&QueuedJob` borrowed straight from the snapshot — the hot path never
/// clones the queue.
pub fn rank_jobs<J: std::borrow::Borrow<QueuedJob>>(
    jobs: &mut [J],
    now: SimTime,
    weights: &PriorityWeights,
    fairness: FairnessView<'_>,
) {
    jobs.sort_by(|a, b| {
        priority_of(a.borrow(), now, weights, fairness).cmp_desc(&priority_of(
            b.borrow(),
            now,
            weights,
            fairness,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{GroupId, JobId, SimDuration, UserId};

    fn job(id: u64, submit_s: u64, cores: u32, boost: i64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(0),
            group: GroupId(0),
            queue: QueueId(0),
            cores,
            walltime: SimDuration::from_secs(600),
            submit_time: SimTime::from_secs(submit_s),
            priority_boost: boost,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        }
    }

    #[test]
    fn queue_time_orders_fifo() {
        let mut jobs = vec![job(2, 100, 4, 0), job(1, 0, 4, 0)];
        rank_jobs(
            &mut jobs,
            SimTime::from_secs(200),
            &PriorityWeights::default(),
            FairnessView::None,
        );
        assert_eq!(jobs[0].id, JobId(1), "older job first");
    }

    #[test]
    fn boost_dominates() {
        // The Z-job rule: once submitted it has the highest priority.
        let mut jobs = vec![job(1, 0, 4, 0), job(2, 100, 120, 1_000_000)];
        rank_jobs(
            &mut jobs,
            SimTime::from_secs(200),
            &PriorityWeights::default(),
            FairnessView::None,
        );
        assert_eq!(jobs[0].id, JobId(2));
    }

    #[test]
    fn ties_break_by_submit_then_id() {
        let mut jobs = vec![job(3, 50, 4, 0), job(2, 50, 4, 0), job(1, 60, 4, 0)];
        let w = PriorityWeights {
            queue_time_weight: 0.0,
            ..Default::default()
        };
        rank_jobs(&mut jobs, SimTime::from_secs(100), &w, FairnessView::None);
        assert_eq!(
            jobs.iter().map(|j| j.id.0).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
    }

    #[test]
    fn resource_weight_favours_large_jobs() {
        let w = PriorityWeights {
            queue_time_weight: 0.0,
            resource_weight: 1.0,
            ..Default::default()
        };
        let mut jobs = vec![job(1, 0, 4, 0), job(2, 0, 60, 0)];
        rank_jobs(&mut jobs, SimTime::from_secs(100), &w, FairnessView::None);
        assert_eq!(jobs[0].id, JobId(2));
    }

    #[test]
    fn static_view_matches_tracker_delta() {
        use dynbatch_core::FairshareConfig;
        let cfg = FairshareConfig {
            enabled: true,
            default_target: 0.5,
            ..FairshareConfig::default()
        };
        let mut fs = FairshareTracker::new(cfg, SimTime::ZERO);
        fs.charge(UserId(0), 100.0);
        let view = FairnessView::Static(&fs);
        assert_eq!(view.delta(UserId(0)), fs.priority_delta(UserId(0)));
        assert_eq!(view.demotion(UserId(0), QueueId(0)), 0.0);
    }

    #[test]
    fn time_aware_delta_reads_decayed_share() {
        use crate::usage_history::UsageHistory;
        use dynbatch_core::FairshareConfig;
        let cfg = FairshareConfig {
            enabled: true,
            default_target: 0.25,
            ..FairshareConfig::default()
        };
        let mut hist = UsageHistory::new(cfg.half_life, 100);
        // Long steady 50-core usage → share ≈ 0.5, delta ≈ −0.25.
        for hour in 0..24 * 20 {
            hist.charge(
                UserId(0),
                QueueId(0),
                50 * 3_600_000,
                SimTime::ZERO + SimDuration::from_hours(hour),
            );
        }
        let now = SimTime::ZERO + SimDuration::from_hours(24 * 20);
        let snap = hist.snapshot(now);
        let view = FairnessView::TimeAware {
            config: &cfg,
            usage: Some(&snap),
        };
        assert!((view.delta(UserId(0)) - (0.25 - 0.5)).abs() < 0.02);
        // An unseen user gets the full target.
        assert!((view.delta(UserId(7)) - 0.25).abs() < 1e-12);
        // No published accounts yet: target-only delta, no demotion.
        let unpublished = FairnessView::TimeAware {
            config: &cfg,
            usage: None,
        };
        assert_eq!(unpublished.delta(UserId(0)), 0.25);
        assert_eq!(unpublished.demotion(UserId(0), QueueId(0)), 0.0);
    }

    #[test]
    fn budget_demotion_ranks_over_budget_last() {
        use crate::usage_history::UsageHistory;
        use dynbatch_core::FairshareConfig;
        let cfg = FairshareConfig {
            enabled: true,
            user_budget_core_hours: Some(10.0),
            ..FairshareConfig::default()
        };
        let mut hist = UsageHistory::new(cfg.half_life, 100);
        hist.charge(UserId(0), QueueId(0), 20 * 3_600_000, SimTime::ZERO); // 20 core-h
        let snap = hist.snapshot(SimTime::ZERO);
        let view = FairnessView::TimeAware {
            config: &cfg,
            usage: Some(&snap),
        };
        assert_eq!(view.demotion(UserId(0), QueueId(0)), cfg.budget_demotion);
        assert_eq!(view.demotion(UserId(1), QueueId(1)), 0.0);
        // Demotion outranks ordinary priority differences.
        let mut over = job(1, 0, 4, 0);
        over.user = UserId(0);
        let mut under = job(2, 100, 4, 0);
        under.user = UserId(1);
        let mut jobs = vec![over, under];
        rank_jobs(
            &mut jobs,
            SimTime::from_secs(5000),
            &PriorityWeights::default(),
            view,
        );
        assert_eq!(jobs[0].id, JobId(2), "in-budget user first");
        // Decay drains the account below budget → demotion lifts.
        let wk = SimTime::ZERO + SimDuration::from_hours(24 * 7);
        let later = hist.snapshot(wk);
        let view = FairnessView::TimeAware {
            config: &cfg,
            usage: Some(&later),
        };
        assert_eq!(view.demotion(UserId(0), QueueId(0)), 0.0);
    }

    #[test]
    fn queue_budget_demotes_whole_queue() {
        use crate::usage_history::UsageHistory;
        use dynbatch_core::FairshareConfig;
        let cfg = FairshareConfig {
            enabled: true,
            queue_budget_core_hours: Some(5.0),
            ..FairshareConfig::default()
        };
        let mut hist = UsageHistory::new(cfg.half_life, 100);
        hist.charge(UserId(0), QueueId(3), 6 * 3_600_000, SimTime::ZERO);
        let snap = hist.snapshot(SimTime::ZERO);
        let view = FairnessView::TimeAware {
            config: &cfg,
            usage: Some(&snap),
        };
        // Any user submitting into queue 3 is demoted; other queues fine.
        assert_eq!(view.demotion(UserId(9), QueueId(3)), cfg.budget_demotion);
        assert_eq!(view.demotion(UserId(0), QueueId(1)), 0.0);
    }

    #[test]
    fn expansion_factor_prefers_short_waiting_jobs() {
        let w = PriorityWeights {
            queue_time_weight: 0.0,
            expansion_weight: 1.0,
            ..Default::default()
        };
        let mut short = job(1, 0, 4, 0);
        short.walltime = SimDuration::from_secs(60);
        let mut long = job(2, 0, 4, 0);
        long.walltime = SimDuration::from_secs(6000);
        let mut jobs = vec![long, short];
        rank_jobs(&mut jobs, SimTime::from_secs(120), &w, FairnessView::None);
        // Same wait, but the short job's expansion factor is larger.
        assert_eq!(jobs[0].id, JobId(1));
    }
}
