//! Job prioritisation (Maui-style composite priority).
//!
//! The Maui scheduler computes a weighted sum of priority factors per job
//! and services jobs in descending order. We implement the factors the
//! paper's evaluation exercises: queue time (the FIFO backbone), the
//! expansion factor, resource size, an additive boost (used by the ESP Z
//! jobs), and the static-fairshare deviation.

use crate::fairshare::FairshareTracker;
use crate::snapshot::QueuedJob;
use dynbatch_core::{PriorityWeights, SimTime};
use std::cmp::Ordering;

/// A queued job's computed priority, with deterministic tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Priority {
    /// The composite score (higher runs first).
    pub score: f64,
    /// Tie-break 1: earlier submission wins.
    pub submit_time: SimTime,
    /// Tie-break 2: lower job id wins.
    pub job_seq: u64,
}

impl Priority {
    /// Total order: score desc, then submit asc, then id asc.
    pub fn cmp_desc(&self, other: &Priority) -> Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.submit_time.cmp(&other.submit_time))
            .then_with(|| self.job_seq.cmp(&other.job_seq))
    }
}

/// Computes the composite priority of a queued job at instant `now`.
pub fn priority_of(
    job: &QueuedJob,
    now: SimTime,
    weights: &PriorityWeights,
    fairshare: Option<&FairshareTracker>,
) -> Priority {
    let wait_min = now.duration_since(job.submit_time).as_mins_f64();
    let walltime_min = job.walltime.as_mins_f64().max(1e-9);
    let expansion = wait_min / walltime_min;
    let fs_delta = fairshare.map_or(0.0, |fs| fs.priority_delta(job.user));
    let score = job.priority_boost as f64
        + weights.queue_time_weight * wait_min
        + weights.expansion_weight * expansion
        + weights.resource_weight * job.cores as f64
        + weights.fairshare_weight * fs_delta;
    Priority {
        score,
        submit_time: job.submit_time,
        job_seq: job.id.0,
    }
}

/// Sorts queued jobs into scheduling order (highest priority first).
///
/// Generic over ownership so the scheduler can rank a vector of
/// `&QueuedJob` borrowed straight from the snapshot — the hot path never
/// clones the queue.
pub fn rank_jobs<J: std::borrow::Borrow<QueuedJob>>(
    jobs: &mut [J],
    now: SimTime,
    weights: &PriorityWeights,
    fairshare: Option<&FairshareTracker>,
) {
    jobs.sort_by(|a, b| {
        priority_of(a.borrow(), now, weights, fairshare).cmp_desc(&priority_of(
            b.borrow(),
            now,
            weights,
            fairshare,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbatch_core::{GroupId, JobId, SimDuration, UserId};

    fn job(id: u64, submit_s: u64, cores: u32, boost: i64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            user: UserId(0),
            group: GroupId(0),
            cores,
            walltime: SimDuration::from_secs(600),
            submit_time: SimTime::from_secs(submit_s),
            priority_boost: boost,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        }
    }

    #[test]
    fn queue_time_orders_fifo() {
        let mut jobs = vec![job(2, 100, 4, 0), job(1, 0, 4, 0)];
        rank_jobs(
            &mut jobs,
            SimTime::from_secs(200),
            &PriorityWeights::default(),
            None,
        );
        assert_eq!(jobs[0].id, JobId(1), "older job first");
    }

    #[test]
    fn boost_dominates() {
        // The Z-job rule: once submitted it has the highest priority.
        let mut jobs = vec![job(1, 0, 4, 0), job(2, 100, 120, 1_000_000)];
        rank_jobs(
            &mut jobs,
            SimTime::from_secs(200),
            &PriorityWeights::default(),
            None,
        );
        assert_eq!(jobs[0].id, JobId(2));
    }

    #[test]
    fn ties_break_by_submit_then_id() {
        let mut jobs = vec![job(3, 50, 4, 0), job(2, 50, 4, 0), job(1, 60, 4, 0)];
        let w = PriorityWeights {
            queue_time_weight: 0.0,
            ..Default::default()
        };
        rank_jobs(&mut jobs, SimTime::from_secs(100), &w, None);
        assert_eq!(
            jobs.iter().map(|j| j.id.0).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
    }

    #[test]
    fn resource_weight_favours_large_jobs() {
        let w = PriorityWeights {
            queue_time_weight: 0.0,
            resource_weight: 1.0,
            ..Default::default()
        };
        let mut jobs = vec![job(1, 0, 4, 0), job(2, 0, 60, 0)];
        rank_jobs(&mut jobs, SimTime::from_secs(100), &w, None);
        assert_eq!(jobs[0].id, JobId(2));
    }

    #[test]
    fn expansion_factor_prefers_short_waiting_jobs() {
        let w = PriorityWeights {
            queue_time_weight: 0.0,
            expansion_weight: 1.0,
            ..Default::default()
        };
        let mut short = job(1, 0, 4, 0);
        short.walltime = SimDuration::from_secs(60);
        let mut long = job(2, 0, 4, 0);
        long.walltime = SimDuration::from_secs(6000);
        let mut jobs = vec![long, short];
        rank_jobs(&mut jobs, SimTime::from_secs(120), &w, None);
        // Same wait, but the short job's expansion factor is larger.
        assert_eq!(jobs[0].id, JobId(1));
    }
}
