//! Reservations and planned starts.
//!
//! When the highest-priority idle job cannot start, Maui determines the
//! earliest time resources become available and *reserves* them
//! (paper §III-A). The extended iteration additionally classifies planned
//! jobs as **StartNow** / **StartLater** (paper Fig 5) — the set over which
//! dynamic-allocation delays are measured.

use dynbatch_core::{JobId, SimDuration, SimTime};

/// Whether a planned job can begin immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Resources are free right now.
    Now,
    /// Blocked; holds a future reservation.
    Later,
}

/// A planned start for a queued job, produced by the static planning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedStart {
    /// The job.
    pub job: JobId,
    /// Planned start instant.
    pub start: SimTime,
    /// Planned end (start + walltime).
    pub end: SimTime,
    /// Cores the plan holds for it.
    pub cores: u32,
    /// StartNow or StartLater.
    pub kind: StartKind,
}

impl PlannedStart {
    /// The planned wait from `now` until the start.
    pub fn wait_from(&self, now: SimTime) -> SimDuration {
        self.start.duration_since(now)
    }
}

/// A committed resource reservation (the backfill fence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// The job the reservation belongs to.
    pub job: JobId,
    /// Reserved window start.
    pub start: SimTime,
    /// Reserved window end.
    pub end: SimTime,
    /// Reserved cores.
    pub cores: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_from() {
        let p = PlannedStart {
            job: JobId(1),
            start: SimTime::from_secs(100),
            end: SimTime::from_secs(200),
            cores: 8,
            kind: StartKind::Later,
        };
        assert_eq!(
            p.wait_from(SimTime::from_secs(40)),
            SimDuration::from_secs(60)
        );
        assert_eq!(p.wait_from(SimTime::from_secs(150)), SimDuration::ZERO);
    }
}
