//! Property tests of the availability timeline: the algebra the whole
//! scheduler stands on.

use dynbatch_core::testkit::{check, TestRng};
use dynbatch_core::{SimDuration, SimTime};
use dynbatch_sched::reference::NaiveProfile;
use dynbatch_sched::AvailabilityProfile;

/// A random, always-feasible sequence of holds.
fn holds(rng: &mut TestRng) -> Vec<(u64, u64, u32)> {
    let n = rng.range_usize(0, 40);
    (0..n)
        .map(|_| (rng.below(5000), rng.range(1, 5000), rng.range_u32(1, 16)))
        .collect()
}

fn build(capacity: u32, ops: &[(u64, u64, u32)]) -> AvailabilityProfile {
    let mut p = AvailabilityProfile::new(SimTime::ZERO, capacity);
    for &(from, len, cores) in ops {
        let from = SimTime::from_secs(from);
        let to = from + SimDuration::from_secs(len);
        if p.min_idle(from, to) >= cores {
            p.hold(from, to, cores);
        }
    }
    p
}

#[test]
fn idle_never_exceeds_capacity() {
    check(128, 0xA11CE, |rng| {
        let p = build(64, &holds(rng));
        for &(t, idle) in p.steps() {
            assert!(idle <= 64, "at {t}: {idle}");
        }
    });
}

#[test]
fn hold_release_round_trips() {
    check(128, 0xB0B, |rng| {
        let mut p = build(64, &holds(rng));
        let before = p.clone();
        let from = SimTime::from_secs(100);
        let to = SimTime::from_secs(900);
        let cores = p.min_idle(from, to);
        if cores > 0 {
            p.hold(from, to, cores);
            p.release(from, to, cores);
        }
        assert_eq!(p, before);
    });
}

#[test]
fn earliest_fit_is_sound_and_earliest() {
    check(128, 0xFEED, |rng| {
        let ops = holds(rng);
        let cores = rng.range_u32(1, 64);
        let dur = SimDuration::from_secs(rng.range(1, 2000));
        let nb = SimTime::from_secs(rng.below(3000));
        let p = build(64, &ops);
        let start = p.earliest_fit(cores, dur, nb).expect("within capacity");
        // Sound: the window really fits.
        assert!(start >= nb);
        assert!(p.min_idle(start, start + dur) >= cores);
        // Earliest: no breakpoint (or nb itself) strictly before `start`
        // also fits.
        let mut candidates: Vec<SimTime> = vec![nb];
        candidates.extend(p.steps().iter().map(|&(t, _)| t).filter(|&t| t > nb));
        for t in candidates {
            if t < start {
                assert!(
                    p.min_idle(t, t + dur) < cores,
                    "{t} would have fit before {start}"
                );
            }
        }
    });
}

#[test]
fn min_idle_equals_pointwise_minimum() {
    check(128, 0xC0FFEE, |rng| {
        let ops = holds(rng);
        let from = SimTime::from_secs(rng.below(4000));
        let to = from + SimDuration::from_secs(rng.range(1, 2000));
        let p = build(64, &ops);
        let reported = p.min_idle(from, to);
        // Sample pointwise (at from + every interior breakpoint).
        let mut minimum = p.idle_at(from);
        for &(t, _) in p.steps() {
            if t > from && t < to {
                minimum = minimum.min(p.idle_at(t));
            }
        }
        assert_eq!(reported, minimum);
    });
}

#[test]
fn holds_commute() {
    check(128, 0xD1CE, |rng| {
        // Applying a feasibility-filtered op list in order equals applying
        // the same accepted ops in one pass (determinism check through the
        // breakpoint/coalescing machinery).
        let ops = holds(rng);
        let p1 = build(64, &ops);
        let p2 = build(64, &ops);
        assert_eq!(p1, p2);
    });
}

/// A time either within 10 s of the origin or within 10 s of
/// `SimTime::MAX` — every interesting overflow boundary lives there.
fn edge_time(rng: &mut TestRng) -> SimTime {
    if rng.chance(0.5) {
        SimTime::from_millis(u64::MAX - rng.below(10_000))
    } else {
        SimTime::from_millis(rng.below(10_000))
    }
}

/// `hold` / `release` / `earliest_fit` at the far end of the time axis:
/// the timeline saturates window ends at `SimTime::MAX` (`hold_for` and
/// `earliest_fit`'s end computation) rather than overflowing, and the
/// naive reference must agree observationally on windows and durations
/// within a hair of `MAX` — including `to == SimTime::MAX` ("to
/// infinity") itself.
#[test]
fn operations_near_simtime_max_match_naive_reference() {
    check(256, 0x7EE7, |rng| {
        const CAPACITY: u32 = 32;
        let mut fast = AvailabilityProfile::new(SimTime::ZERO, CAPACITY);
        let mut naive = NaiveProfile::new(SimTime::ZERO, CAPACITY);
        let mut held: Vec<(SimTime, SimTime, u32)> = Vec::new();
        let ops = rng.range_usize(1, 50);
        for _ in 0..ops {
            match rng.below(4) {
                // hold an explicit (possibly infinite) window
                0 => {
                    let a = edge_time(rng);
                    let b = if rng.chance(0.25) {
                        SimTime::MAX
                    } else {
                        edge_time(rng)
                    };
                    let (from, to) = if a <= b { (a, b) } else { (b, a) };
                    let avail = fast.min_idle(from, to);
                    if avail > 0 && from < to {
                        let cores = rng.range_u32(1, avail + 1);
                        fast.hold(from, to, cores);
                        naive.hold(from, to, cores);
                        held.push((from, to, cores));
                    }
                }
                // hold_for with a duration that saturates past MAX
                1 => {
                    let from = edge_time(rng);
                    let dur = SimDuration::from_millis(u64::MAX - rng.below(20_000));
                    let to = from.saturating_add(dur);
                    let avail = fast.min_idle(from, to);
                    if avail > 0 && from < to {
                        let cores = rng.range_u32(1, avail + 1);
                        fast.hold_for(from, dur, cores);
                        naive.hold_for(from, dur, cores);
                        held.push((from, to, cores));
                    }
                }
                // release a previously held window (possibly split)
                2 => {
                    if let Some(i) =
                        (!held.is_empty()).then(|| rng.below(held.len() as u64) as usize)
                    {
                        let (from, to, cores) = held.swap_remove(i);
                        let part = rng.range_u32(1, cores + 1);
                        fast.release(from, to, part);
                        naive.release(from, to, part);
                        if part < cores {
                            held.push((from, to, cores - part));
                        }
                    }
                }
                // queries, with durations big enough to saturate
                _ => {
                    let t = edge_time(rng);
                    assert_eq!(fast.idle_at(t), naive.idle_at(t), "idle_at({t})");
                    let b = edge_time(rng);
                    let (from, to) = if t <= b { (t, b) } else { (b, t) };
                    assert_eq!(
                        fast.min_idle(from, to),
                        naive.min_idle(from, to),
                        "min_idle({from}, {to})"
                    );
                    let cores = rng.range_u32(0, CAPACITY + 4);
                    let dur = SimDuration::from_millis(u64::MAX - rng.below(20_000));
                    let nb = edge_time(rng);
                    assert_eq!(
                        fast.earliest_fit(cores, dur, nb),
                        naive.earliest_fit(cores, dur, nb),
                        "earliest_fit({cores}, {dur}, {nb})"
                    );
                }
            }
            assert_eq!(fast.steps(), naive.steps(), "step vectors diverged");
        }
    });
}

/// The windowed implementation is observationally equivalent to the naive
/// reference ([`NaiveProfile`], the original full-scan formulation) on
/// random interleavings of `hold` / `release` / queries. This is the
/// contract that lets the optimised timeline replace the naive one in the
/// scheduler hot path without changing a single decision.
#[test]
fn windowed_profile_matches_naive_reference() {
    check(256, 0x5EED5, |rng| {
        const CAPACITY: u32 = 64;
        let mut fast = AvailabilityProfile::new(SimTime::ZERO, CAPACITY);
        let mut naive = NaiveProfile::new(SimTime::ZERO, CAPACITY);
        // Released windows we can later re-hold (so `release` stays
        // feasible: it must never push idle above capacity).
        let mut held: Vec<(SimTime, SimTime, u32)> = Vec::new();
        let ops = rng.range_usize(1, 60);
        for _ in 0..ops {
            match rng.below(4) {
                // hold a feasible window
                0 => {
                    let from = SimTime::from_secs(rng.below(5000));
                    let to = if rng.chance(0.1) {
                        SimTime::MAX
                    } else {
                        from + SimDuration::from_secs(rng.range(1, 5000))
                    };
                    let avail = fast.min_idle(from, to);
                    if avail > 0 {
                        let cores = rng.range_u32(1, avail + 1);
                        fast.hold(from, to, cores);
                        naive.hold(from, to, cores);
                        held.push((from, to, cores));
                    }
                }
                // release a previously held window (possibly split)
                1 => {
                    if let Some(i) =
                        (!held.is_empty()).then(|| rng.below(held.len() as u64) as usize)
                    {
                        let (from, to, cores) = held.swap_remove(i);
                        let part = rng.range_u32(1, cores + 1);
                        fast.release(from, to, part);
                        naive.release(from, to, part);
                        if part < cores {
                            held.push((from, to, cores - part));
                        }
                    }
                }
                // point / window queries
                2 => {
                    let t = SimTime::from_secs(rng.below(6000));
                    assert_eq!(fast.idle_at(t), naive.idle_at(t), "idle_at({t})");
                    let to = t + SimDuration::from_secs(rng.below(4000));
                    assert_eq!(
                        fast.min_idle(t, to),
                        naive.min_idle(t, to),
                        "min_idle({t}, {to})"
                    );
                }
                // earliest_fit queries (including infeasible core counts)
                _ => {
                    let cores = rng.range_u32(0, CAPACITY + 4);
                    let dur = SimDuration::from_secs(rng.below(3000));
                    let nb = SimTime::from_secs(rng.below(6000));
                    assert_eq!(
                        fast.earliest_fit(cores, dur, nb),
                        naive.earliest_fit(cores, dur, nb),
                        "earliest_fit({cores}, {dur}, {nb})"
                    );
                }
            }
            // The step vectors agree exactly (both stay coalesced).
            assert_eq!(fast.steps(), naive.steps(), "step vectors diverged");
        }
    });
}
