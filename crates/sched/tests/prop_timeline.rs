//! Property tests of the availability timeline: the algebra the whole
//! scheduler stands on.

use dynbatch_core::{SimDuration, SimTime};
use dynbatch_sched::AvailabilityProfile;
use proptest::prelude::*;

/// A random, always-feasible sequence of holds.
fn holds() -> impl Strategy<Value = Vec<(u64, u64, u32)>> {
    prop::collection::vec((0u64..5000, 1u64..5000, 1u32..16), 0..40)
}

fn build(capacity: u32, ops: &[(u64, u64, u32)]) -> AvailabilityProfile {
    let mut p = AvailabilityProfile::new(SimTime::ZERO, capacity);
    for &(from, len, cores) in ops {
        let from = SimTime::from_secs(from);
        let to = from + SimDuration::from_secs(len);
        if p.min_idle(from, to) >= cores {
            p.hold(from, to, cores);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn idle_never_exceeds_capacity(ops in holds()) {
        let p = build(64, &ops);
        for &(t, idle) in p.steps() {
            prop_assert!(idle <= 64, "at {t}: {idle}");
        }
    }

    #[test]
    fn hold_release_round_trips(ops in holds()) {
        let mut p = build(64, &ops);
        let before = p.clone();
        let from = SimTime::from_secs(100);
        let to = SimTime::from_secs(900);
        let cores = p.min_idle(from, to);
        if cores > 0 {
            p.hold(from, to, cores);
            p.release(from, to, cores);
        }
        prop_assert_eq!(p, before);
    }

    #[test]
    fn earliest_fit_is_sound_and_earliest(
        ops in holds(),
        cores in 1u32..64,
        dur in 1u64..2000,
        not_before in 0u64..3000,
    ) {
        let p = build(64, &ops);
        let dur = SimDuration::from_secs(dur);
        let nb = SimTime::from_secs(not_before);
        let start = p.earliest_fit(cores, dur, nb).expect("within capacity");
        // Sound: the window really fits.
        prop_assert!(start >= nb);
        prop_assert!(p.min_idle(start, start + dur) >= cores);
        // Earliest: no breakpoint (or nb itself) strictly before `start`
        // also fits.
        let mut candidates: Vec<SimTime> = vec![nb];
        candidates.extend(p.steps().iter().map(|&(t, _)| t).filter(|&t| t > nb));
        for t in candidates {
            if t < start {
                prop_assert!(
                    p.min_idle(t, t + dur) < cores,
                    "{t} would have fit before {start}"
                );
            }
        }
    }

    #[test]
    fn min_idle_equals_pointwise_minimum(ops in holds(), from in 0u64..4000, len in 1u64..2000) {
        let p = build(64, &ops);
        let from = SimTime::from_secs(from);
        let to = from + SimDuration::from_secs(len);
        let reported = p.min_idle(from, to);
        // Sample pointwise (at from + every interior breakpoint).
        let mut minimum = p.idle_at(from);
        for &(t, _) in p.steps() {
            if t > from && t < to {
                minimum = minimum.min(p.idle_at(t));
            }
        }
        prop_assert_eq!(reported, minimum);
    }

    #[test]
    fn holds_commute(ops in holds()) {
        // Applying a feasibility-filtered op list in order equals applying
        // the same accepted ops in one pass (determinism check through the
        // breakpoint/coalescing machinery).
        let p1 = build(64, &ops);
        let p2 = build(64, &ops);
        prop_assert_eq!(p1, p2);
    }
}
