//! Brute-force oracle for `mold_fit`, the start-width chooser.
//!
//! The production code computes the moldable width arithmetically
//! (`max_cores.min(idle.saturating_sub(reserve_extra))`); the oracle
//! instead *tries every candidate width* in the moldable range against
//! the naive reference profile. Equality over random profiles and jobs
//! pins the `reserve_extra` subtraction (a width fits only if the job's
//! guaranteeing pre-reserve fits on top of it) and the saturation when
//! the reserve alone exceeds the idle cores.

use dynbatch_core::testkit::{check, TestRng};
use dynbatch_core::{GroupId, JobId, MalleableRange, QueueId, SimDuration, SimTime, UserId};
use dynbatch_sched::reference::NaiveProfile;
use dynbatch_sched::{mold_fit, AvailabilityProfile, QueuedJob};

/// Random feasible holds applied to both representations.
fn build(rng: &mut TestRng, capacity: u32) -> (AvailabilityProfile, NaiveProfile) {
    let mut fast = AvailabilityProfile::new(SimTime::ZERO, capacity);
    let mut naive = NaiveProfile::new(SimTime::ZERO, capacity);
    for _ in 0..rng.range_usize(0, 30) {
        let from = SimTime::from_secs(rng.below(2000));
        let to = from + SimDuration::from_secs(rng.range(1, 2000));
        let avail = fast.min_idle(from, to);
        if avail > 0 {
            let cores = rng.range_u32(1, avail + 1);
            fast.hold(from, to, cores);
            naive.hold(from, to, cores);
        }
    }
    (fast, naive)
}

/// The spec: the largest width in the moldable range (or the fixed
/// request) whose `width + reserve_extra` fits `[now, now + walltime)`,
/// found by trying every candidate against the naive profile.
fn oracle(naive: &NaiveProfile, job: &QueuedJob, now: SimTime) -> Option<u32> {
    let idle = naive.min_idle(now, now.saturating_add(job.walltime));
    let fits = |w: u32| idle >= w + job.reserve_extra;
    match job.moldable {
        None => fits(job.cores).then_some(job.cores),
        Some(r) => (r.min_cores..=r.max_cores).rev().find(|&w| fits(w)),
    }
}

#[test]
fn mold_fit_matches_brute_force_oracle() {
    check(512, 0x401D, |rng| {
        const CAPACITY: u32 = 48;
        let (fast, naive) = build(rng, CAPACITY);
        let now = SimTime::from_secs(rng.below(3000));
        // 70 % moldable (ranges may exceed capacity), 30 % rigid; half
        // the jobs carry a guaranteeing pre-reserve.
        let moldable = rng.chance(0.7).then(|| {
            let min_cores = rng.range_u32(1, CAPACITY + 1);
            MalleableRange {
                min_cores,
                max_cores: rng.range_u32(min_cores, CAPACITY + 4),
            }
        });
        let job = QueuedJob {
            id: JobId(1),
            user: UserId(0),
            group: GroupId(0),
            queue: QueueId(0),
            cores: rng.range_u32(1, CAPACITY + 4),
            walltime: SimDuration::from_secs(rng.range(1, 3000)),
            submit_time: SimTime::ZERO,
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            reserve_extra: if rng.chance(0.5) {
                rng.range_u32(0, 9)
            } else {
                0
            },
            moldable,
        };
        assert_eq!(
            mold_fit(&fast, &job, now),
            oracle(&naive, &job, now),
            "molding diverged (cores {}, moldable {:?}, reserve {})",
            job.cores,
            job.moldable,
            job.reserve_extra
        );
    });
}
