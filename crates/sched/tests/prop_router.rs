//! Property tests of the deterministic shard router: the assignment of
//! dynamic requests to shards, and the claim order of the stealing
//! queues, are pure functions of the id sequence — no interleaving of
//! shard completion order, worker count, or claim timing can perturb
//! what lands where.

use dynbatch_core::testkit::{check, TestRng};
use dynbatch_core::JobId;
use dynbatch_sched::{ShardRouter, StealQueues};

fn random_ids(rng: &mut TestRng) -> Vec<JobId> {
    let n = rng.range_usize(0, 120);
    (0..n).map(|_| JobId(rng.below(1 << 20))).collect()
}

#[test]
fn assignment_is_a_pure_function_of_the_id_sequence() {
    check(200, 0x51AD_0001, |rng| {
        let shards = rng.range_usize(1, 8);
        let router = ShardRouter::new(shards);
        let ids = random_ids(rng);
        let assign = router.assign_tasks(ids.iter().copied());
        assert_eq!(assign.len(), ids.len());
        assert!(assign.iter().all(|&s| s < shards));
        // Re-running the fold — or a freshly built router — changes
        // nothing.
        assert_eq!(assign, router.assign_tasks(ids.iter().copied()));
        assert_eq!(
            assign,
            ShardRouter::new(shards).assign_tasks(ids.iter().copied())
        );
        // Hash-plus-load keeps any two shards within two tasks of each
        // other: a shard only receives an off-hash task while lightest.
        let mut load = vec![0usize; shards];
        for &s in &assign {
            load[s] += 1;
        }
        let (lo, hi) = (
            *load.iter().min().expect("shards >= 1"),
            *load.iter().max().expect("shards >= 1"),
        );
        assert!(hi - lo <= 2, "load skew {load:?}");
    });
}

#[test]
fn any_claim_interleaving_yields_the_same_task_placement() {
    // Simulate arbitrary "completion order" interleavings: a random
    // schedule of which worker claims next. Whatever the interleaving,
    // (a) every task is claimed exactly once, and (b) a task-indexed
    // result table is identical — the worker a task lands on is
    // unobservable, which is exactly why the speculative phases of the
    // sharded `Maui::iterate` are deterministic.
    check(120, 0x51AD_0002, |rng| {
        let shards = rng.range_usize(1, 6);
        let workers = rng.range_usize(1, 6);
        let router = ShardRouter::new(shards);
        let ids = random_ids(rng);
        let assign = router.assign_tasks(ids.iter().copied());
        let queues = StealQueues::new(&assign, shards);

        let reference: Vec<u64> = (0..ids.len()).map(|t| ids[t].0.wrapping_mul(31)).collect();
        let mut results: Vec<Option<u64>> = vec![None; ids.len()];
        let mut live: Vec<usize> = (0..workers).collect();
        while !live.is_empty() {
            let pick = rng.range_usize(0, live.len());
            let w = live[pick];
            match queues.next_for(w) {
                Some(task) => {
                    assert!(
                        results[task].is_none(),
                        "task {task} claimed twice (worker {w})"
                    );
                    results[task] = Some(ids[task].0.wrapping_mul(31));
                }
                None => {
                    live.swap_remove(pick);
                }
            }
        }
        let results: Vec<u64> = results
            .into_iter()
            .map(|r| r.expect("every task claimed exactly once"))
            .collect();
        assert_eq!(results, reference);
    });
}

#[test]
fn reset_replays_the_identical_queues() {
    check(60, 0x51AD_0003, |rng| {
        let shards = rng.range_usize(1, 5);
        let router = ShardRouter::new(shards);
        let ids = random_ids(rng);
        let queues = StealQueues::new(&router.assign_tasks(ids.iter().copied()), shards);
        let drain = |start_worker: usize| {
            let mut seen = Vec::new();
            while let Some(t) = queues.next_for(start_worker) {
                seen.push(t);
            }
            seen
        };
        let first = drain(0);
        queues.reset();
        // A single worker drains in the fixed victim order, so a replay
        // from the same worker is byte-identical.
        assert_eq!(first, drain(0));
        queues.reset();
        // From any other worker the *set* of claimed tasks is the same.
        let mut a = first.clone();
        let mut b = drain(rng.range_usize(0, 7));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    });
}

#[test]
fn compose_hold_is_exact_and_deterministic() {
    check(200, 0x51AD_0004, |rng| {
        let shards = rng.range_usize(1, 6);
        let router = ShardRouter::new(shards);
        let free: Vec<u32> = (0..shards).map(|_| rng.range_u32(0, 40)).collect();
        let total: u32 = free.iter().sum();
        let job = JobId(rng.below(1 << 20));
        let width = rng.range_u32(0, 50);
        match router.compose_hold(job, width, &free) {
            Some(hold) => {
                assert!(width <= total, "hold composed beyond capacity");
                assert_eq!(hold.width(), width, "parts must sum to the width");
                // Parts sorted by shard id, non-zero, within free cores.
                for pair in hold.parts.windows(2) {
                    assert!(pair[0].0 < pair[1].0, "parts out of order");
                }
                for &(s, c) in &hold.parts {
                    assert!(c > 0 && c <= free[s], "part ({s},{c}) vs free {free:?}");
                }
                assert_eq!(
                    Some(hold),
                    router.compose_hold(job, width, &free),
                    "composition must be pure"
                );
            }
            None => assert!(width > total, "refused a hold that fits: {free:?}"),
        }
    });
}
