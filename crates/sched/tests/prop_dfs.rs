//! Property tests of the dynamic-fairness engine: whatever the sequence of
//! charges, intervals and policies, limits are never silently exceeded.

use dynbatch_core::testkit::{check, TestRng};
use dynbatch_core::{
    CredLimits, DfsConfig, DfsPolicy, GroupId, JobId, SimDuration, SimTime, UserId,
};
use dynbatch_sched::{DelayCharge, DfsEngine, DfsVerdict};

/// (job, user, group, delay_s, gap_s before this evaluation)
fn charges(rng: &mut TestRng) -> Vec<(u64, u32, u32, u64, u64)> {
    let n = rng.range_usize(0, 40);
    (0..n)
        .map(|_| {
            (
                rng.below(20),
                rng.range_u32(0, 4),
                rng.range_u32(0, 2),
                rng.below(2000),
                rng.below(7200),
            )
        })
        .collect()
}

#[test]
fn target_cap_is_never_exceeded_within_an_interval() {
    check(128, 0xD45, |rng| {
        let batch_of = charges(rng);
        let cap = rng.range(100, 3000);
        let decay = rng.f64();
        let interval = SimDuration::from_hours(1);
        let mut cfg = DfsConfig::uniform_target(cap, interval);
        cfg.decay = decay;
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        let evolving_user = UserId(99);

        let mut now = SimTime::ZERO;
        // Track our own view of each user's charge, replaying interval
        // decay, and verify the engine never lets a commit push a user past
        // the cap *at commit time*.
        for (job, user, group, delay_s, gap_s) in batch_of {
            now += SimDuration::from_secs(gap_s);
            eng.advance_to(now);
            let batch = [DelayCharge {
                job: JobId(job),
                user: UserId(user),
                group: GroupId(group),
                delay: SimDuration::from_secs(delay_s),
            }];
            if eng.evaluate(evolving_user, &batch) == DfsVerdict::Allowed {
                eng.commit(evolving_user, &batch);
            }
            // The invariant: the engine's own ledger never exceeds the cap.
            for u in 0..4 {
                assert!(
                    eng.user_charged(UserId(u)) <= SimDuration::from_secs(cap),
                    "user {u} charged {} over cap {cap}",
                    eng.user_charged(UserId(u))
                );
            }
        }
    });
}

#[test]
fn decay_shrinks_monotonically() {
    check(128, 0xDECA1, |rng| {
        let initial_s = rng.range(1, 100_000);
        let decay = rng.f64();
        let intervals = rng.range(1, 20);
        let mut cfg = DfsConfig::uniform_target(u64::MAX / 2000, SimDuration::from_hours(1));
        cfg.decay = decay;
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        eng.commit(
            UserId(9),
            &[DelayCharge {
                job: JobId(1),
                user: UserId(0),
                group: GroupId(0),
                delay: SimDuration::from_secs(initial_s),
            }],
        );
        let mut prev = eng.user_charged(UserId(0));
        for k in 1..=intervals {
            eng.advance_to(SimTime::ZERO + SimDuration::from_hours(k));
            let cur = eng.user_charged(UserId(0));
            assert!(cur <= prev, "decay must not grow charge: {cur} > {prev}");
            prev = cur;
        }
        if decay == 0.0 && intervals >= 1 {
            assert!(prev.is_zero());
        }
    });
}

#[test]
fn perm_denied_users_are_never_charged() {
    check(128, 0xBEEF, |rng| {
        let batch_of = charges(rng);
        let mut cfg = DfsConfig::uniform_target(u64::MAX / 2000, SimDuration::from_hours(1));
        cfg.users.insert(UserId(2), CredLimits::never_delay());
        cfg.policy = DfsPolicy::TargetDelay;
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        for (job, user, group, delay_s, _) in batch_of {
            let batch = [DelayCharge {
                job: JobId(job),
                user: UserId(user),
                group: GroupId(group),
                delay: SimDuration::from_secs(delay_s.max(1)),
            }];
            if eng.evaluate(UserId(99), &batch) == DfsVerdict::Allowed {
                eng.commit(UserId(99), &batch);
            }
        }
        assert!(
            eng.user_charged(UserId(2)).is_zero(),
            "protected user stayed clean"
        );
    });
}

#[test]
fn same_user_exemption_is_total() {
    check(128, 0x5E1F, |rng| {
        // Every delay belongs to the evolving user itself: always allowed,
        // never charged, regardless of a 1-second cap.
        let batch_of = charges(rng);
        let cfg = DfsConfig::uniform_target(1, SimDuration::from_hours(1));
        let mut eng = DfsEngine::new(cfg, SimTime::ZERO);
        for (job, _, group, delay_s, _) in batch_of {
            let owner = UserId(0);
            let batch = [DelayCharge {
                job: JobId(job),
                user: owner,
                group: GroupId(group),
                delay: SimDuration::from_secs(delay_s),
            }];
            assert_eq!(eng.evaluate(owner, &batch), DfsVerdict::Allowed);
            eng.commit(owner, &batch);
        }
        assert!(eng.user_charged(UserId(0)).is_zero());
    });
}
