//! Property tests of the full Maui iteration: for arbitrary (consistent)
//! snapshots and site policies, the outcome never violates capacity,
//! ranges, or determinism.

use dynbatch_core::{
    DfsConfig, GroupId, JobId, MalleableRange, SchedulerConfig, SimDuration, SimTime, UserId,
};
use dynbatch_sched::{DynDecision, DynRequest, Maui, QueuedJob, RunningJob, Snapshot};
use proptest::prelude::*;

const CAPACITY: u32 = 64;

#[derive(Debug, Clone)]
struct RawRunning {
    cores: u32,
    end_s: u64,
    backfilled: bool,
    malleable: bool,
    wants_extra: Option<u32>,
}

fn snapshot_strategy() -> impl Strategy<Value = (Snapshot, SchedulerConfig)> {
    let running = prop::collection::vec(
        (1u32..12, 10u64..5000, any::<bool>(), any::<bool>(), prop::option::of(1u32..8)).prop_map(
            |(cores, end_s, backfilled, malleable, wants_extra)| RawRunning {
                cores,
                end_s,
                backfilled,
                malleable,
                wants_extra,
            },
        ),
        0..10,
    );
    let queued = prop::collection::vec((1u32..40, 10u64..3000, 0u64..1000), 0..20);
    let knobs = (
        0usize..8,          // reservation_depth
        0usize..8,          // reservation_delay_depth
        prop::option::of(10u64..5000), // dfs cap
        any::<bool>(),      // preempt
        any::<bool>(),      // shrink malleable
        any::<bool>(),      // grow malleable
    );
    (running, queued, knobs).prop_map(|(running, queued, knobs)| {
        let now = SimTime::from_secs(1000);
        let mut snap = Snapshot {
            now,
            total_cores: CAPACITY,
            running: Vec::new(),
            queued: Vec::new(),
            dyn_requests: Vec::new(),
        };
        let mut used = 0u32;
        let mut seq = 0u64;
        for (i, r) in running.into_iter().enumerate() {
            if used + r.cores > CAPACITY {
                break;
            }
            used += r.cores;
            let id = JobId(i as u64);
            snap.running.push(RunningJob {
                id,
                user: UserId((i % 5) as u32),
                group: GroupId((i % 2) as u32),
                cores: r.cores,
                start_time: SimTime::from_secs(500),
                walltime_end: now + SimDuration::from_secs(r.end_s),
                backfilled: r.backfilled,
                reserved_extra: 0,
                malleable: r.malleable.then_some(MalleableRange {
                    min_cores: 1,
                    max_cores: r.cores + 8,
                }),
            });
            if let Some(extra) = r.wants_extra {
                snap.dyn_requests.push(DynRequest {
                    job: id,
                    user: UserId((i % 5) as u32),
                    group: GroupId((i % 2) as u32),
                    extra_cores: extra,
                    remaining_walltime: SimDuration::from_secs(r.end_s),
                    seq,
                    deadline: None,
                });
                seq += 1;
            }
        }
        for (i, (cores, wall_s, age_s)) in queued.into_iter().enumerate() {
            snap.queued.push(QueuedJob {
                id: JobId(1000 + i as u64),
                user: UserId((i % 5) as u32),
                group: GroupId((i % 2) as u32),
                cores: cores.min(CAPACITY),
                walltime: SimDuration::from_secs(wall_s),
                submit_time: SimTime::from_secs(1000 - age_s),
                priority_boost: 0,
                suppress_backfill_while_queued: false,
                reserve_extra: 0,
                moldable: None,
            });
        }
        let (rd, rdd, cap, preempt, shrink, grow) = knobs;
        let mut cfg = SchedulerConfig::paper_eval();
        cfg.reservation_depth = rd;
        cfg.reservation_delay_depth = rdd;
        cfg.dfs = match cap {
            None => DfsConfig::highest_priority(),
            Some(c) => DfsConfig::uniform_target(c, SimDuration::from_hours(1)),
        };
        cfg.preempt_backfilled_for_dyn = preempt;
        cfg.shrink_malleable_for_dyn = shrink;
        cfg.grow_malleable_on_idle = grow;
        (snap, cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn iteration_outcomes_are_always_consistent((snap, cfg) in snapshot_strategy()) {
        let mut maui = Maui::new(cfg.clone());
        let out = maui.iterate(&snap);

        // Account capacity at `now` after applying every decision.
        let mut used: i64 = snap.running.iter().map(|r| r.cores as i64).sum();
        let mut granted_jobs = std::collections::HashSet::new();
        let mut granted_extra: std::collections::HashMap<JobId, i64> =
            std::collections::HashMap::new();
        for d in &out.dyn_decisions {
            match d {
                DynDecision::Granted { job, extra_cores, preempted, shrunk, .. } => {
                    prop_assert!(granted_jobs.insert(*job), "one grant per job");
                    granted_extra.insert(*job, *extra_cores as i64);
                    for p in preempted {
                        let victim = snap.running.iter().find(|r| r.id == *p)
                            .expect("preempted job is running");
                        prop_assert!(victim.backfilled, "only backfilled jobs preempted");
                        // The victim releases everything it holds — its
                        // snapshot cores plus any expansion granted to it
                        // earlier this iteration.
                        used -= victim.cores as i64 + granted_extra.remove(p).unwrap_or(0);
                    }
                    for r in shrunk {
                        let m = snap.running.iter().find(|x| x.id == r.job)
                            .expect("shrunk job is running")
                            .malleable.expect("shrunk job is malleable");
                        prop_assert!(r.to_cores >= m.min_cores, "never below min");
                        prop_assert!(r.to_cores < r.from_cores, "shrink shrinks");
                        used -= (r.from_cores - r.to_cores) as i64;
                    }
                    used += *extra_cores as i64;
                }
                DynDecision::Rejected { .. } | DynDecision::Deferred { .. } => {}
            }
        }
        for s in &out.starts {
            let job = snap.queued.iter().find(|q| q.id == s.job).expect("started job queued");
            used += s.cores.unwrap_or(job.cores) as i64;
        }
        for g in &out.grows {
            let m = snap.running.iter().find(|x| x.id == g.job)
                .expect("grown job is running")
                .malleable.expect("grown job is malleable");
            prop_assert!(g.to_cores <= m.max_cores, "never above max");
            prop_assert!(g.to_cores > g.from_cores, "grow grows");
            used += (g.to_cores - g.from_cores) as i64;
        }
        prop_assert!(used <= CAPACITY as i64, "capacity respected: {used}");

        // No duplicate starts; every started job was queued.
        let mut seen = std::collections::HashSet::new();
        for s in &out.starts {
            prop_assert!(seen.insert(s.job), "{:?} started twice", s.job);
        }

        // Reservations begin strictly in the future.
        for r in &out.reservations {
            prop_assert!(r.start > snap.now);
            prop_assert!(r.end > r.start);
        }

        // Determinism: a fresh scheduler under the same config agrees.
        let out2 = Maui::new(cfg).iterate(&snap);
        prop_assert_eq!(out.starts, out2.starts);
        prop_assert_eq!(out.dyn_decisions, out2.dyn_decisions);
        prop_assert_eq!(out.grows, out2.grows);
    }

    #[test]
    fn dfs_cap_bounds_committed_delay(
        (snap, mut cfg) in snapshot_strategy(),
        cap in 10u64..500,
    ) {
        cfg.dfs = DfsConfig::uniform_target(cap, SimDuration::from_hours(1));
        let mut maui = Maui::new(cfg);
        let out = maui.iterate(&snap);
        // Sum committed delay per (non-self) user: never above the cap.
        let mut per_user = std::collections::HashMap::new();
        for d in &out.dyn_decisions {
            if let DynDecision::Granted { delays, job, .. } = d {
                let owner = snap.running.iter().find(|r| r.id == *job).map(|r| r.user);
                for c in delays {
                    if Some(c.user) != owner {
                        *per_user.entry(c.user).or_insert(0u64) += c.delay.as_millis();
                    }
                }
            }
        }
        for (user, ms) in per_user {
            prop_assert!(
                ms <= cap * 1000,
                "{user}: committed {ms} ms exceeds cap {cap} s"
            );
        }
    }
}
