//! Property tests of the full Maui iteration: for arbitrary (consistent)
//! snapshots and site policies, the outcome never violates capacity,
//! ranges, or determinism.

use dynbatch_core::testkit::{check, TestRng};
use dynbatch_core::{
    DfsConfig, GroupId, JobId, MalleableRange, QueueId, SchedulerConfig, SimDuration, SimTime,
    UserId,
};
use dynbatch_sched::{DynDecision, DynRequest, Maui, QueuedJob, RunningJob, Snapshot};

const CAPACITY: u32 = 64;

fn random_snapshot(rng: &mut TestRng) -> (Snapshot, SchedulerConfig) {
    let now = SimTime::from_secs(1000);
    let mut snap = Snapshot {
        now,
        total_cores: CAPACITY,
        running: Vec::new(),
        queued: Vec::new(),
        dyn_requests: Vec::new(),
        usage: None,
        deltas: None,
    };
    let mut used = 0u32;
    let mut seq = 0u64;
    let n_running = rng.range_usize(0, 10);
    for i in 0..n_running {
        let cores = rng.range_u32(1, 12);
        if used + cores > CAPACITY {
            break;
        }
        used += cores;
        let id = JobId(i as u64);
        let end_s = rng.range(10, 5000);
        let malleable = rng.chance(0.5);
        snap.running.push(RunningJob {
            id,
            user: UserId((i % 5) as u32),
            group: GroupId((i % 2) as u32),
            cores,
            start_time: SimTime::from_secs(500),
            walltime_end: now + SimDuration::from_secs(end_s),
            backfilled: rng.chance(0.5),
            reserved_extra: 0,
            malleable: malleable.then_some(MalleableRange {
                min_cores: 1,
                max_cores: cores + 8,
            }),
        });
        if rng.chance(0.5) {
            snap.dyn_requests.push(DynRequest {
                job: id,
                user: UserId((i % 5) as u32),
                group: GroupId((i % 2) as u32),
                extra_cores: rng.range_u32(1, 8),
                remaining_walltime: SimDuration::from_secs(end_s),
                seq,
                deadline: None,
            });
            seq += 1;
        }
    }
    let n_queued = rng.range_usize(0, 20);
    for i in 0..n_queued {
        snap.queued.push(QueuedJob {
            id: JobId(1000 + i as u64),
            user: UserId((i % 5) as u32),
            group: GroupId((i % 2) as u32),
            queue: QueueId(0),
            cores: rng.range_u32(1, 40).min(CAPACITY),
            walltime: SimDuration::from_secs(rng.range(10, 3000)),
            submit_time: SimTime::from_secs(1000 - rng.below(1000)),
            priority_boost: 0,
            suppress_backfill_while_queued: false,
            reserve_extra: 0,
            moldable: None,
        });
    }
    let mut cfg = SchedulerConfig::paper_eval();
    cfg.reservation_depth = rng.range_usize(0, 8);
    cfg.reservation_delay_depth = rng.range_usize(0, 8);
    cfg.dfs = if rng.chance(0.5) {
        DfsConfig::highest_priority()
    } else {
        DfsConfig::uniform_target(rng.range(10, 5000), SimDuration::from_hours(1))
    };
    cfg.preempt_backfilled_for_dyn = rng.chance(0.5);
    cfg.shrink_malleable_for_dyn = rng.chance(0.5);
    cfg.grow_malleable_on_idle = rng.chance(0.5);
    (snap, cfg)
}

#[test]
fn iteration_outcomes_are_always_consistent() {
    check(192, 0x1417E, |rng| {
        let (snap, cfg) = random_snapshot(rng);
        let mut maui = Maui::new(cfg.clone());
        let out = maui.iterate(&snap);

        // Account capacity at `now` after applying every decision.
        let mut used: i64 = snap.running.iter().map(|r| r.cores as i64).sum();
        let mut granted_jobs = std::collections::HashSet::new();
        let mut granted_extra: std::collections::HashMap<JobId, i64> =
            std::collections::HashMap::new();
        for d in &out.dyn_decisions {
            match d {
                DynDecision::Granted {
                    job,
                    extra_cores,
                    preempted,
                    shrunk,
                    ..
                } => {
                    assert!(granted_jobs.insert(*job), "one grant per job");
                    granted_extra.insert(*job, *extra_cores as i64);
                    for p in preempted {
                        let victim = snap
                            .running
                            .iter()
                            .find(|r| r.id == *p)
                            .expect("preempted job is running");
                        assert!(victim.backfilled, "only backfilled jobs preempted");
                        // The victim releases everything it holds — its
                        // snapshot cores plus any expansion granted to it
                        // earlier this iteration.
                        used -= victim.cores as i64 + granted_extra.remove(p).unwrap_or(0);
                    }
                    for r in shrunk {
                        let m = snap
                            .running
                            .iter()
                            .find(|x| x.id == r.job)
                            .expect("shrunk job is running")
                            .malleable
                            .expect("shrunk job is malleable");
                        assert!(r.to_cores >= m.min_cores, "never below min");
                        assert!(r.to_cores < r.from_cores, "shrink shrinks");
                        used -= (r.from_cores - r.to_cores) as i64;
                    }
                    used += *extra_cores as i64;
                }
                DynDecision::Rejected { .. } | DynDecision::Deferred { .. } => {}
            }
        }
        for s in &out.starts {
            let job = snap
                .queued
                .iter()
                .find(|q| q.id == s.job)
                .expect("started job queued");
            used += s.cores.unwrap_or(job.cores) as i64;
        }
        for g in &out.grows {
            let m = snap
                .running
                .iter()
                .find(|x| x.id == g.job)
                .expect("grown job is running")
                .malleable
                .expect("grown job is malleable");
            assert!(g.to_cores <= m.max_cores, "never above max");
            assert!(g.to_cores > g.from_cores, "grow grows");
            used += (g.to_cores - g.from_cores) as i64;
        }
        assert!(used <= CAPACITY as i64, "capacity respected: {used}");

        // No duplicate starts; every started job was queued.
        let mut seen = std::collections::HashSet::new();
        for s in &out.starts {
            assert!(seen.insert(s.job), "{:?} started twice", s.job);
        }

        // Reservations begin strictly in the future.
        for r in &out.reservations {
            assert!(r.start > snap.now);
            assert!(r.end > r.start);
        }

        // Determinism: a fresh scheduler under the same config agrees.
        let out2 = Maui::new(cfg.clone()).iterate(&snap);
        assert_eq!(out.starts, out2.starts);
        assert_eq!(out.dyn_decisions, out2.dyn_decisions);
        assert_eq!(out.grows, out2.grows);

        // And one with the before-plan cache disabled agrees too: the
        // cache is a pure work-saving device.
        let mut uncached = Maui::new(cfg);
        uncached.set_plan_cache_enabled(false);
        let out3 = uncached.iterate(&snap);
        assert_eq!(out.starts, out3.starts);
        assert_eq!(out.dyn_decisions, out3.dyn_decisions);
        assert_eq!(out.grows, out3.grows);
    });
}

#[test]
fn dfs_cap_bounds_committed_delay() {
    check(192, 0xCA9, |rng| {
        let (snap, mut cfg) = random_snapshot(rng);
        let cap = rng.range(10, 500);
        cfg.dfs = DfsConfig::uniform_target(cap, SimDuration::from_hours(1));
        let mut maui = Maui::new(cfg);
        let out = maui.iterate(&snap);
        // Sum committed delay per (non-self) user: never above the cap.
        let mut per_user = std::collections::HashMap::new();
        for d in &out.dyn_decisions {
            if let DynDecision::Granted { delays, job, .. } = d {
                let owner = snap.running.iter().find(|r| r.id == *job).map(|r| r.user);
                for c in delays {
                    if Some(c.user) != owner {
                        *per_user.entry(c.user).or_insert(0u64) += c.delay.as_millis();
                    }
                }
            }
        }
        for (user, ms) in per_user {
            assert!(
                ms <= cap * 1000,
                "{user}: committed {ms} ms exceeds cap {cap} s"
            );
        }
    });
}
